// The cluster client: the coordinator's side of the wire. It implements
// manager.Transport over one connection per worker process, pipelining — many
// requests stay in flight per connection, matched to replies by request ID —
// so the overlay's send-all-then-collect submission overlap survives the move
// out of process.
//
// Connection failures trigger bounded-backoff reconnection with a full state
// resync: the client re-sends the Hello handshake, issues a Restart per
// hosted shard carrying the last broadcast vector and the shard's drain
// floor (so a freshly respawned worker replays its own WAL tail, with
// replayed sequences marked recovered for duplicate-ack dedupe), and then
// replays every still-outstanding request in its original order. Requests
// issued while the connection is down queue and ride the resync. Only after
// the reconnect budget lapses do calls fail — surfacing to the overlay as
// ErrShardDown, exactly like a crashed in-process shard.
package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"socialtrust/internal/manager"
	"socialtrust/internal/rating"
)

const (
	// reconnectBase/Max bound the dial backoff; reconnectBudget is how long a
	// connection may stay down before its outstanding calls fail over to the
	// overlay's shard-down handling.
	reconnectBase   = 50 * time.Millisecond
	reconnectMax    = 2 * time.Second
	reconnectBudget = 30 * time.Second
	// dialRetryBudget bounds the initial Start dial — workers may still be
	// binding their sockets when the coordinator comes up.
	dialRetryBudget = 10 * time.Second
	// maxInflight caps pipelined requests per connection.
	maxInflight = 256
)

var errWorkerUnreachable = errors.New("cluster: worker unreachable after reconnect budget")

// call is one in-flight request: its encoded frame is kept until the reply
// lands so a reconnect can replay it.
type call struct {
	id      uint64
	c       *conn
	frame   []byte
	done    chan struct{}
	payload []byte // reply body (after the echoed header), set before done closes
	err     error
}

// cancel withdraws a timed-out call: the frame leaves the pending set so a
// later resync will not replay it. The fault model treats a submit timeout as
// "lost in transit" — the coordinator retries or accounts the loss — so
// redelivering the original frame after a reconnect would turn every
// timed-out-then-retried submission into a duplicate. A reply that races the
// cancellation completes the call quietly; one that arrives later finds no
// pending entry and is dropped.
func (ca *call) cancel() {
	c := ca.c
	c.mu.Lock()
	if _, ok := c.pending[ca.id]; ok {
		delete(c.pending, ca.id)
		mInflight.Add(-1)
	}
	c.mu.Unlock()
}

func (ca *call) complete(payload []byte, err error) {
	ca.payload = payload
	ca.err = err
	close(ca.done)
	mInflight.Add(-1)
}

// conn is one worker connection. mu guards the writer and all connection
// state; blocking resync handshakes run under it, so callers queue behind a
// reconnect instead of racing it.
type conn struct {
	cl     *Client
	addr   string
	shards []uint32 // shard indices hosted behind this connection

	mu      sync.Mutex
	nc      net.Conn // nil while reconnecting
	bw      *bufio.Writer
	gen     int // connection generation; stale reader/writer failures no-op
	nextID  uint64
	pending map[uint64]*call
	order   []uint64 // request IDs in send order, for reconnect replay
	down    error    // non-nil: permanently failed, calls fail immediately
}

// Client implements manager.Transport over a set of worker addresses. Shard i
// is hosted by worker i mod len(addrs).
type Client struct {
	addrs     []string
	numShards int
	conns     []*conn

	numNodes   int
	replicated bool
	closed     atomic.Bool

	mu            sync.Mutex
	lastReps      []float64 // most recent broadcast vector (resync Restart payload)
	floors        []uint64  // per-shard drained high-water marks (resync replay floors)
	replicaFloors []uint64  // per-shard replica-drain marks (fated-record replay floors)
}

// NewClient builds a transport routing numShards shards across the workers at
// addrs ("unix:/path" or "tcp:host:port"). Start dials.
func NewClient(addrs []string, numShards int) *Client {
	cl := &Client{addrs: addrs, numShards: numShards,
		floors: make([]uint64, numShards), replicaFloors: make([]uint64, numShards)}
	cl.conns = make([]*conn, len(addrs))
	for i := range addrs {
		cl.conns[i] = &conn{cl: cl, addr: addrs[i], pending: make(map[uint64]*call)}
	}
	for s := 0; s < numShards; s++ {
		c := cl.conns[s%len(addrs)]
		c.shards = append(c.shards, uint32(s))
	}
	return cl
}

// Start dials every worker and runs the Hello handshake. Part of
// manager.Transport; called once from NewWithOptions.
func (cl *Client) Start(numNodes int, replicated bool, reps []float64) error {
	cl.numNodes = numNodes
	cl.replicated = replicated
	cl.mu.Lock()
	cl.lastReps = append([]float64(nil), reps...)
	cl.mu.Unlock()
	for _, c := range cl.conns {
		nc, err := dialRetry(c.addr, dialRetryBudget)
		if err != nil {
			cl.Close()
			return err
		}
		c.mu.Lock()
		err = c.resyncLocked(nc, false)
		c.mu.Unlock()
		if err != nil {
			_ = nc.Close()
			cl.Close()
			return err
		}
	}
	return nil
}

// Shard returns shard i's endpoint. Part of manager.Transport.
func (cl *Client) Shard(i int) manager.ShardConn {
	return &shardPort{cl: cl, c: cl.conns[i%len(cl.conns)], shard: uint32(i)}
}

// Close fails all outstanding calls and closes every connection. Part of
// manager.Transport.
func (cl *Client) Close() error {
	cl.closed.Store(true)
	for _, c := range cl.conns {
		c.mu.Lock()
		c.failAllLocked(manager.ErrClosed)
		if c.nc != nil {
			_ = c.nc.Close()
			c.nc = nil
		}
		c.gen++
		c.mu.Unlock()
	}
	return nil
}

func dialRetry(addr string, budget time.Duration) (net.Conn, error) {
	network, address := splitListen(addr)
	deadline := time.Now().Add(budget)
	delay := reconnectBase
	for {
		nc, err := net.Dial(network, address)
		if err == nil {
			return nc, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		time.Sleep(delay)
		if delay *= 2; delay > reconnectMax {
			delay = reconnectMax
		}
	}
}

// ---- connection lifecycle ----

// failAllLocked permanently fails the connection: every pending call
// completes with err and future calls fail immediately.
func (c *conn) failAllLocked(err error) {
	if c.down == nil {
		c.down = err
	}
	for id, ca := range c.pending {
		delete(c.pending, id)
		ca.complete(nil, c.down)
	}
	c.order = c.order[:0]
}

// connFailed reacts to a read or write error on generation gen: the socket
// closes, pending calls stay queued, and a reconnect loop takes over. Stale
// generations (a failure already handled) no-op.
func (c *conn) connFailed(gen int) {
	c.mu.Lock()
	if c.gen != gen || c.down != nil {
		c.mu.Unlock()
		return
	}
	c.gen++
	nc := c.nc
	c.nc = nil
	c.bw = nil
	c.mu.Unlock()
	if nc != nil {
		_ = nc.Close()
	}
	if c.cl.closed.Load() {
		c.mu.Lock()
		c.failAllLocked(manager.ErrClosed)
		c.mu.Unlock()
		return
	}
	go c.reconnect()
}

// reconnect redials with bounded backoff and resyncs. Gives up after
// reconnectBudget, failing all queued calls.
func (c *conn) reconnect() {
	deadline := time.Now().Add(reconnectBudget)
	delay := reconnectBase
	for {
		if c.cl.closed.Load() {
			c.mu.Lock()
			c.failAllLocked(manager.ErrClosed)
			c.mu.Unlock()
			return
		}
		mReconnects.Inc()
		network, address := splitListen(c.addr)
		nc, err := net.Dial(network, address)
		if err == nil {
			c.mu.Lock()
			err = c.resyncLocked(nc, true)
			c.mu.Unlock()
			if err == nil {
				return
			}
			_ = nc.Close()
		}
		if time.Now().After(deadline) {
			c.mu.Lock()
			c.failAllLocked(errWorkerUnreachable)
			c.mu.Unlock()
			return
		}
		time.Sleep(delay)
		if delay *= 2; delay > reconnectMax {
			delay = reconnectMax
		}
	}
}

// resyncLocked runs the connection handshake on a fresh socket and installs
// it. With restarts set (a reconnect, not the initial dial) it first issues a
// Restart per hosted shard — last broadcast vector, drain floor, replayed
// WAL sequences marked recovered — and then replays every outstanding call in
// its original send order; the worker's WAL-replay dedupe makes the
// redelivery exactly-once. Callers hold c.mu.
func (c *conn) resyncLocked(nc net.Conn, restarts bool) error {
	br := bufio.NewReaderSize(nc, 64<<10)
	bw := bufio.NewWriterSize(nc, 64<<10)

	// One synchronous round trip on the raw socket.
	rt := func(op byte, shard uint32, body func([]byte) []byte) error {
		id := c.nextID
		c.nextID++
		frame := finishFrame(body(appendHeader(beginFrame(nil), op, id, shard)))
		if _, err := bw.Write(frame); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		mFramesSent.Inc()
		mBytesSent.Add(int64(len(frame)))
		payload, err := readFrame(br, nil)
		if err != nil {
			return err
		}
		h, rbody, err := parseHeader(payload)
		if err != nil {
			return err
		}
		if h.id != id || h.op != op|replyFlag {
			return fmt.Errorf("%w: handshake reply mismatch (op %d id %d)", ErrCorruptFrame, h.op, h.id)
		}
		w := &wire{b: rbody}
		if err := parseReplyStatus(w); err != nil {
			return err
		}
		return nil
	}

	c.cl.mu.Lock()
	reps := append([]float64(nil), c.cl.lastReps...)
	floors := append([]uint64(nil), c.cl.floors...)
	replicaFloors := append([]uint64(nil), c.cl.replicaFloors...)
	c.cl.mu.Unlock()

	hello := helloInfo{
		version:    protoVersion,
		numNodes:   c.cl.numNodes,
		replicated: c.cl.replicated,
		shards:     c.shards,
		reps:       reps,
	}
	if err := rt(opHello, 0, func(b []byte) []byte { return appendHello(b, hello) }); err != nil {
		return err
	}
	if restarts {
		for _, s := range c.shards {
			ri := restartInfo{floor: floors[s], replicaFloor: replicaFloors[s], markRecovered: true, reps: reps}
			if err := rt(opRestart, s, func(b []byte) []byte { return appendRestart(b, ri) }); err != nil {
				return err
			}
		}
		// Replay outstanding calls in their original order.
		for _, id := range c.order {
			ca := c.pending[id]
			if ca == nil {
				continue
			}
			if _, err := bw.Write(ca.frame); err != nil {
				return err
			}
			mFramesSent.Inc()
			mBytesSent.Add(int64(len(ca.frame)))
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}

	c.nc = nc
	c.bw = bw
	c.gen++
	go c.reader(c.gen, br)
	return nil
}

// reader matches reply frames to pending calls by request ID until the
// connection fails.
func (c *conn) reader(gen int, br *bufio.Reader) {
	for {
		payload, err := readFrame(br, nil)
		if err != nil {
			c.connFailed(gen)
			return
		}
		sp := mDecodeLat.Start()
		h, body, err := parseHeader(payload)
		sp.End()
		if err != nil || h.op&replyFlag == 0 {
			c.connFailed(gen)
			return
		}
		c.mu.Lock()
		if c.gen != gen {
			c.mu.Unlock()
			return
		}
		ca := c.pending[h.id]
		if ca != nil {
			delete(c.pending, h.id)
		}
		// Compact the send-order log once it is mostly tombstones.
		if len(c.order) > 2*len(c.pending)+64 {
			live := c.order[:0]
			for _, id := range c.order {
				if _, ok := c.pending[id]; ok {
					live = append(live, id)
				}
			}
			c.order = live
		}
		c.mu.Unlock()
		if ca != nil {
			ca.complete(body, nil)
		}
	}
}

// roundTrip registers and sends one request, returning the in-flight call.
// On a down-but-reconnecting connection the call queues (the resync replays
// it); only a permanently failed connection errors immediately.
func (c *conn) roundTrip(op byte, shard uint32, body func([]byte) []byte) (*call, error) {
	c.mu.Lock()
	if c.down != nil {
		err := c.down
		c.mu.Unlock()
		return nil, err
	}
	id := c.nextID
	c.nextID++
	sp := mEncodeLat.Start()
	frame := finishFrame(body(appendHeader(beginFrame(nil), op, id, shard)))
	sp.End()
	ca := &call{id: id, c: c, frame: frame, done: make(chan struct{})}
	c.pending[id] = ca
	c.order = append(c.order, id)
	mInflight.Add(1)
	gen := c.gen
	var werr error
	if c.bw != nil {
		if _, werr = c.bw.Write(frame); werr == nil {
			werr = c.bw.Flush()
		}
		if werr == nil {
			mFramesSent.Inc()
			mBytesSent.Add(int64(len(frame)))
		}
	}
	c.mu.Unlock()
	if werr != nil {
		c.connFailed(gen) // the call stays pending; the resync replays it
	}
	return ca, nil
}

// await blocks for the call's reply. timeout zero blocks indefinitely (the
// direct-path contract); a lapsed deadline returns manager.ErrTimeout and
// leaves the call pending — a late reply completes it quietly.
func await(ca *call, timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		<-ca.done
		return ca.payload, ca.err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-ca.done:
		return ca.payload, ca.err
	case <-t.C:
		return nil, manager.ErrTimeout
	}
}

// ---- the per-shard endpoint ----

// shardPort implements manager.ShardConn for one shard behind one connection.
type shardPort struct {
	cl    *Client
	c     *conn
	shard uint32
}

// submitWait parses a submit acknowledgement into the index-aligned error
// slice the overlay expects.
func submitWait(ca *call, timeout time.Duration) ([]error, error) {
	payload, err := await(ca, timeout)
	if err != nil {
		if errors.Is(err, manager.ErrTimeout) {
			ca.cancel()
		}
		return nil, err
	}
	w := &wire{b: payload}
	if err := parseReplyStatus(w); err != nil {
		return nil, err
	}
	_, errs := parseSubmitReply(w)
	if err := w.done(); err != nil {
		return nil, err
	}
	return errs, nil
}

func (p *shardPort) SubmitPlain(rs []rating.Rating) func() ([]error, error) {
	ca, err := p.c.roundTrip(opSubmitPlain, p.shard, func(b []byte) []byte { return appendRatings(b, rs) })
	if err != nil {
		return func() ([]error, error) { return nil, err }
	}
	return func() ([]error, error) { return submitWait(ca, 0) }
}

func (p *shardPort) SubmitEntries(entries []manager.BatchEntry, timeout time.Duration) func() ([]error, error) {
	ca, err := p.c.roundTrip(opSubmitEntries, p.shard, func(b []byte) []byte { return appendEntries(b, entries) })
	if err != nil {
		return func() ([]error, error) { return nil, err }
	}
	return func() ([]error, error) { return submitWait(ca, timeout) }
}

func (p *shardPort) Drain(timeout time.Duration) (manager.DrainSnapshots, error) {
	ca, err := p.c.roundTrip(opDrain, p.shard, func(b []byte) []byte { return b })
	if err != nil {
		return manager.DrainSnapshots{}, err
	}
	payload, err := await(ca, timeout)
	if err != nil {
		return manager.DrainSnapshots{}, err
	}
	w := &wire{b: payload}
	if err := parseReplyStatus(w); err != nil {
		return manager.DrainSnapshots{}, err
	}
	var ds manager.DrainSnapshots
	ds.Primary = w.snapshot()
	ds.HasReplica = w.bool()
	if ds.HasReplica {
		ds.Replica = w.snapshot()
	}
	if err := w.done(); err != nil {
		return manager.DrainSnapshots{}, err
	}
	// Track the drain floors: on reconnect the worker replays only primary WAL
	// records above the primary floor and fated records above the replica
	// floor — the client-side twin of the overlay's noteDrained and
	// noteReplicaDrained.
	if ds.Primary.MaxSeq > 0 || ds.Replica.MaxSeq > 0 {
		p.cl.mu.Lock()
		if ds.Primary.MaxSeq > p.cl.floors[p.shard] {
			p.cl.floors[p.shard] = ds.Primary.MaxSeq
		}
		if ds.Replica.MaxSeq > p.cl.replicaFloors[p.shard] {
			p.cl.replicaFloors[p.shard] = ds.Replica.MaxSeq
		}
		p.cl.mu.Unlock()
	}
	return ds, nil
}

func (p *shardPort) UpdateReps(reps []float64, timeout time.Duration) error {
	p.cl.mu.Lock()
	p.cl.lastReps = append(p.cl.lastReps[:0], reps...)
	p.cl.mu.Unlock()
	ca, err := p.c.roundTrip(opUpdateReps, p.shard, func(b []byte) []byte { return appendFloats(b, reps) })
	if err != nil {
		return err
	}
	return statusWait(ca, timeout)
}

func (p *shardPort) Crash() error {
	ca, err := p.c.roundTrip(opCrash, p.shard, func(b []byte) []byte { return b })
	if err != nil {
		return err
	}
	return statusWait(ca, 0)
}

func (p *shardPort) Restart(reps []float64, floor, replicaFloor uint64, markRecovered bool) error {
	// The coordinator's floors can run ahead of the client's: a replica
	// substitution advances the substituted shard's drained mark without any
	// drain reply ever passing through this shard's port. Every explicit
	// Restart carries the coordinator's current floors, so raise the client's
	// replay floors to match — a later reconnect resync must not replay WAL
	// records the coordinator already recovered through the mirror.
	p.cl.mu.Lock()
	if floor > p.cl.floors[p.shard] {
		p.cl.floors[p.shard] = floor
	}
	if replicaFloor > p.cl.replicaFloors[p.shard] {
		p.cl.replicaFloors[p.shard] = replicaFloor
	}
	p.cl.mu.Unlock()
	ri := restartInfo{floor: floor, replicaFloor: replicaFloor, markRecovered: markRecovered, reps: reps}
	ca, err := p.c.roundTrip(opRestart, p.shard, func(b []byte) []byte { return appendRestart(b, ri) })
	if err != nil {
		return err
	}
	return statusWait(ca, 0)
}

func (p *shardPort) Mark(interval uint64) error {
	ca, err := p.c.roundTrip(opMark, p.shard, func(b []byte) []byte {
		return appendU64(b, interval)
	})
	if err != nil {
		return err
	}
	return statusWait(ca, 0)
}

func (p *shardPort) CompactWAL(coveredSeq uint64) error {
	ca, err := p.c.roundTrip(opCompactWAL, p.shard, func(b []byte) []byte {
		return appendU64(b, coveredSeq)
	})
	if err != nil {
		return err
	}
	return statusWait(ca, 0)
}

func (p *shardPort) ResetWAL() error {
	ca, err := p.c.roundTrip(opResetWAL, p.shard, func(b []byte) []byte { return b })
	if err != nil {
		return err
	}
	return statusWait(ca, 0)
}

// statusWait awaits a reply that carries only a status.
func statusWait(ca *call, timeout time.Duration) error {
	payload, err := await(ca, timeout)
	if err != nil {
		return err
	}
	w := &wire{b: payload}
	if err := parseReplyStatus(w); err != nil {
		return err
	}
	return w.done()
}
