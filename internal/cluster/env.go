// The self-exec worker hook. Spawn re-executes the current binary with
// SOCIALTRUST_SHARDD_LISTEN set; any main that may host workers calls
// WorkerMainIfChild before flag parsing, turning that child process into a
// shard daemon instead of another copy of the parent command.
package cluster

import (
	"fmt"
	"os"
	"time"

	"socialtrust/internal/persist"
)

const (
	envListen   = "SOCIALTRUST_SHARDD_LISTEN"
	envStateDir = "SOCIALTRUST_SHARDD_STATE_DIR"
	envHealth   = "SOCIALTRUST_SHARDD_HEALTH"
	envFsync    = "SOCIALTRUST_SHARDD_FSYNC"
	envLinger   = "SOCIALTRUST_SHARDD_LINGER"
)

// ParseFsync maps a policy name to persist's enum: "marks" (default, also
// ""), "always", "never".
func ParseFsync(s string) (persist.FsyncPolicy, error) {
	switch s {
	case "", "marks":
		return persist.FsyncMarks, nil
	case "always":
		return persist.FsyncAlways, nil
	case "never":
		return persist.FsyncNever, nil
	default:
		return persist.FsyncMarks, fmt.Errorf("cluster: unknown fsync policy %q (marks|always|never)", s)
	}
}

// ConfigFromEnv builds a worker Config from the SOCIALTRUST_SHARDD_*
// environment Spawn sets. The listen address is required.
func ConfigFromEnv() (Config, error) {
	cfg := Config{
		Listen:     os.Getenv(envListen),
		StateDir:   os.Getenv(envStateDir),
		HealthAddr: os.Getenv(envHealth),
	}
	if cfg.Listen == "" {
		return cfg, fmt.Errorf("cluster: %s not set", envListen)
	}
	fsync, err := ParseFsync(os.Getenv(envFsync))
	if err != nil {
		return cfg, err
	}
	cfg.Persist.Fsync = fsync
	if s := os.Getenv(envLinger); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			return cfg, fmt.Errorf("cluster: bad %s: %w", envLinger, err)
		}
		cfg.Linger = d
	}
	return cfg, nil
}

// WorkerMainIfChild checks whether this process was spawned as a worker
// child and, if so, runs the daemon and exits. Call it from main before
// flag.Parse in any command that spawns clusters.
func WorkerMainIfChild() {
	if os.Getenv(envListen) == "" {
		return
	}
	cfg, err := ConfigFromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := NewWorker(cfg).RunSignals(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}
