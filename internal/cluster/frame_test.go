package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"socialtrust/internal/manager"
	"socialtrust/internal/rating"
)

// testFrames builds a representative multi-frame stream: every payload shape
// the protocol sends, framed back to back the way a pipelined connection
// writes them.
func testFrames() ([][]byte, []byte) {
	var payloads [][]byte
	add := func(frame []byte) {
		payloads = append(payloads, append([]byte(nil), frame[frameHeaderLen:]...))
	}

	hello := finishFrame(appendHello(
		appendHeader(beginFrame(nil), opHello, 1, 0),
		helloInfo{version: protoVersion, numNodes: 64, replicated: true,
			shards: []uint32{0, 2}, reps: []float64{0.25, 0.5, 0.25}}))
	add(hello)

	rs := []rating.Rating{
		{Rater: 3, Ratee: 7, Value: 1, Cycle: 2, Category: 5, Seq: 41},
		{Rater: 9, Ratee: 3, Value: -1, Cycle: 2, Category: 1, Seq: 42},
	}
	submit := finishFrame(appendRatings(appendHeader(beginFrame(nil), opSubmitPlain, 2, 1), rs))
	add(submit)

	entries := finishFrame(appendEntries(appendHeader(beginFrame(nil), opSubmitEntries, 3, 1),
		[]manager.BatchEntry{{R: rs[0], Replica: true}, {R: rs[1], Deferred: true}}))
	add(entries)

	drainReply := appendReplyHeader(beginFrame(nil), opDrain, 4, 1, statusOK)
	drainReply = appendSnapshot(drainReply, rating.Snapshot{Ratings: rs, MaxSeq: 42})
	drainReply = appendBool(drainReply, false)
	drainReply = finishFrame(drainReply)
	add(drainReply)

	submitReply := appendReplyHeader(beginFrame(nil), opSubmitPlain, 2, 1, statusOK)
	submitReply = appendSubmitReply(submitReply, 2, []error{nil, errors.New("node out of range")})
	submitReply = finishFrame(submitReply)
	add(submitReply)

	var stream []byte
	stream = append(stream, hello...)
	stream = append(stream, submit...)
	stream = append(stream, entries...)
	stream = append(stream, drainReply...)
	stream = append(stream, submitReply...)
	return payloads, stream
}

func TestFrameRoundTrip(t *testing.T) {
	payloads, stream := testFrames()
	got, valid, err := DecodeFrames(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("DecodeFrames on a clean stream: %v", err)
	}
	if valid != int64(len(stream)) {
		t.Fatalf("valid prefix %d, want %d", valid, len(stream))
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d payloads, want %d", len(got), len(payloads))
	}
	for i := range got {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("payload %d mismatch", i)
		}
		if err := ParsePayload(got[i]); err != nil {
			t.Errorf("ParsePayload(%d): %v", i, err)
		}
	}
}

// TestFrameTruncationEveryOffset cuts the stream at every byte offset. The
// decoder must return exactly the fully-contained frames; a cut inside a
// frame is a torn stream and must report ErrCorruptFrame — never panic.
func TestFrameTruncationEveryOffset(t *testing.T) {
	payloads, stream := testFrames()
	boundaries := map[int]int{0: 0} // offset -> frames complete at that offset
	off := 0
	for i, p := range payloads {
		off += frameHeaderLen + len(p)
		boundaries[off] = i + 1
	}
	for cut := 0; cut <= len(stream); cut++ {
		got, valid, err := DecodeFrames(bytes.NewReader(stream[:cut]))
		wantFrames, clean := boundaries[cut]
		if clean {
			if err != nil {
				t.Fatalf("cut %d (frame boundary): unexpected error %v", cut, err)
			}
			if len(got) != wantFrames {
				t.Fatalf("cut %d: decoded %d frames, want %d", cut, len(got), wantFrames)
			}
			if valid != int64(cut) {
				t.Fatalf("cut %d: valid prefix %d", cut, valid)
			}
			continue
		}
		if err == nil || !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("cut %d (mid-frame): error %v, want ErrCorruptFrame", cut, err)
		}
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("cut %d: decoded frame %d does not match the original", cut, i)
			}
		}
	}
}

// TestFrameCorruptionEveryByte flips each byte of the stream in turn. The
// checksum must reject the damaged frame (ErrCorruptFrame, no panic), and
// every frame decoded before the damage must be intact.
func TestFrameCorruptionEveryByte(t *testing.T) {
	payloads, stream := testFrames()
	for i := 0; i < len(stream); i++ {
		mut := append([]byte(nil), stream...)
		mut[i] ^= 0xFF
		got, _, err := DecodeFrames(bytes.NewReader(mut))
		if err == nil || !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("byte %d flipped: error %v, want ErrCorruptFrame", i, err)
		}
		if len(got) >= len(payloads) {
			t.Fatalf("byte %d flipped: all %d frames decoded despite corruption", i, len(got))
		}
		for j := range got {
			if !bytes.Equal(got[j], payloads[j]) {
				t.Fatalf("byte %d flipped: surviving frame %d corrupted silently", i, j)
			}
		}
	}
}

func TestFrameImplausibleLength(t *testing.T) {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxFramePayload+1)
	if _, _, err := DecodeFrames(bytes.NewReader(hdr[:])); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("oversized length: %v, want ErrCorruptFrame", err)
	}
	binary.LittleEndian.PutUint32(hdr[0:4], 0)
	if _, _, err := DecodeFrames(bytes.NewReader(hdr[:])); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("zero length: %v, want ErrCorruptFrame", err)
	}
}

// TestParsePayloadTrailingBytes checks the strict-length contract: a payload
// with bytes no field accounts for is corrupt, not silently accepted.
func TestParsePayloadTrailingBytes(t *testing.T) {
	p := appendU64(appendHeader(nil, opMark, 7, 0), 3)
	if err := ParsePayload(p); err != nil {
		t.Fatalf("clean mark payload: %v", err)
	}
	if err := ParsePayload(append(p, 0)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("trailing byte: %v, want ErrCorruptFrame", err)
	}
}

// TestSubmitReplyRoundTrip exercises the sparse error encoding both ways.
func TestSubmitReplyRoundTrip(t *testing.T) {
	errs := []error{nil, errors.New("a"), nil, errors.New("b")}
	b := appendSubmitReply(nil, len(errs), errs)
	w := &wire{b: b}
	n, got := parseSubmitReply(w)
	if err := w.done(); err != nil {
		t.Fatal(err)
	}
	if n != 4 || len(got) != 4 || got[0] != nil || got[2] != nil ||
		got[1].Error() != "a" || got[3].Error() != "b" {
		t.Fatalf("round trip mismatch: n=%d errs=%v", n, got)
	}

	b = appendSubmitReply(nil, 3, nil)
	w = &wire{b: b}
	n, got = parseSubmitReply(w)
	if err := w.done(); err != nil {
		t.Fatal(err)
	}
	if n != 3 || got != nil {
		t.Fatalf("nil errs round trip: n=%d errs=%v", n, got)
	}
}
