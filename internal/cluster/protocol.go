// The cluster message protocol: the wire mirror of the manager mailbox.
// Requests carry an op, a request ID (the pipelining key), a shard index and
// an op-specific body; replies echo op|replyFlag and the request ID, lead
// with a status byte, and carry the op-specific result. All integers are
// little-endian; every decode path bounds-checks counts against the bytes
// actually present before allocating, and reports ErrCorruptFrame instead of
// panicking on malformed input.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"socialtrust/internal/manager"
	"socialtrust/internal/rating"
)

// protoVersion is the wire protocol version carried in Hello.
const protoVersion = 1

// Operation codes. A reply's op is the request's op with replyFlag set.
const (
	opHello         byte = 1  // connection setup: geometry, hosted shards, initial reps
	opSubmitPlain   byte = 2  // direct-mode sub-batch (msgSubmitBatch, plain payload)
	opSubmitEntries byte = 3  // fault-mode sub-batch with fate bits (msgSubmitBatch, batch payload)
	opQuery         byte = 4  // reputation query (msgQuery)
	opDrain         byte = 5  // interval drain (msgDrain / end-interval)
	opUpdateReps    byte = 6  // broadcast vector install (msgUpdateReps)
	opCrash         byte = 7  // kill the shard incarnation (ledgers die, WAL survives)
	opRestart       byte = 8  // fresh incarnation: reps + WAL replay floor
	opMark          byte = 9  // interval mark on the shard WAL
	opCompactWAL    byte = 10 // rotate the shard WAL if covered by the drained mark
	opResetWAL      byte = 11 // discard the shard WAL contents

	replyFlag byte = 0x80
)

// Reply status codes.
const (
	statusOK    byte = 0
	statusError byte = 1
)

const (
	msgHeaderLen  = 1 + 8 + 4 // op, request ID, shard
	ratingWireLen = 4 + 4 + 4 + 4 + 8 + 8
)

// entry flag bits (opSubmitEntries).
const (
	entryReplica  byte = 1 << 0
	entryDeferred byte = 1 << 1
)

// ---- encode helpers (append-style, into the caller's reusable buffer) ----

func appendHeader(b []byte, op byte, id uint64, shard uint32) []byte {
	b = append(b, op)
	b = binary.LittleEndian.AppendUint64(b, id)
	return binary.LittleEndian.AppendUint32(b, shard)
}

func appendRating(b []byte, r rating.Rating) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.Rater)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.Ratee)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.Cycle)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(r.Category)))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Value))
	return binary.LittleEndian.AppendUint64(b, r.Seq)
}

func appendRatings(b []byte, rs []rating.Rating) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rs)))
	for _, r := range rs {
		b = appendRating(b, r)
	}
	return b
}

func appendEntries(b []byte, es []manager.BatchEntry) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(es)))
	for _, e := range es {
		b = appendRating(b, e.R)
		var flags byte
		if e.Replica {
			flags |= entryReplica
		}
		if e.Deferred {
			flags |= entryDeferred
		}
		b = append(b, flags)
	}
	return b
}

func appendFloats(b []byte, vs []float64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(vs)))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

func appendString(b []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// appendSnapshot encodes an interval snapshot as its ratings plus the max
// sequence mark. The per-pair frequency counters are fully derivable from the
// ratings (every ledger add updates both views), so the receiver recomputes
// them instead of shipping the map.
func appendSnapshot(b []byte, s rating.Snapshot) []byte {
	b = appendRatings(b, s.Ratings)
	return binary.LittleEndian.AppendUint64(b, s.MaxSeq)
}

func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// ---- decode helpers ----

// wire is a bounds-checked cursor over one frame payload. The first failed
// read latches err and turns every subsequent accessor into a zero-value
// no-op, so decoders read straight through and check once at the end.
type wire struct {
	b   []byte
	off int
	err error
}

func (w *wire) fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf("%w: "+format, append([]any{ErrCorruptFrame}, args...)...)
	}
}

func (w *wire) take(n int) []byte {
	if w.err != nil {
		return nil
	}
	if n < 0 || len(w.b)-w.off < n {
		w.fail("need %d bytes, have %d", n, len(w.b)-w.off)
		return nil
	}
	p := w.b[w.off : w.off+n]
	w.off += n
	return p
}

func (w *wire) u8() byte {
	p := w.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (w *wire) u16() uint16 {
	p := w.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (w *wire) u32() uint32 {
	p := w.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (w *wire) u64() uint64 {
	p := w.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (w *wire) f64() float64 { return math.Float64frombits(w.u64()) }

func (w *wire) str() string {
	n := int(w.u16())
	p := w.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

// count reads a u32 element count and validates it against the bytes left at
// elemSize each, so a corrupt count cannot demand an absurd allocation.
func (w *wire) count(elemSize int) int {
	n := int(w.u32())
	if w.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > len(w.b)-w.off {
		w.fail("element count %d exceeds remaining %d bytes", n, len(w.b)-w.off)
		return 0
	}
	return n
}

func (w *wire) rating() rating.Rating {
	return rating.Rating{
		Rater:    int(int32(w.u32())),
		Ratee:    int(int32(w.u32())),
		Cycle:    int(int32(w.u32())),
		Category: int(int32(w.u32())),
		Value:    w.f64(),
		Seq:      w.u64(),
	}
}

func (w *wire) ratings() []rating.Rating {
	n := w.count(ratingWireLen)
	if w.err != nil || n == 0 {
		return nil
	}
	rs := make([]rating.Rating, n)
	for i := range rs {
		rs[i] = w.rating()
	}
	return rs
}

func (w *wire) entries() []manager.BatchEntry {
	n := w.count(ratingWireLen + 1)
	if w.err != nil || n == 0 {
		return nil
	}
	es := make([]manager.BatchEntry, n)
	for i := range es {
		es[i].R = w.rating()
		flags := w.u8()
		es[i].Replica = flags&entryReplica != 0
		es[i].Deferred = flags&entryDeferred != 0
	}
	return es
}

func (w *wire) floats() []float64 {
	n := w.count(8)
	if w.err != nil || n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = w.f64()
	}
	return vs
}

func (w *wire) bool() bool { return w.u8() != 0 }

// snapshot decodes an interval snapshot, recomputing the per-pair frequency
// counters from the ratings — the exact inverse of the ledger's add path
// (Value>0 counts positive, Value<0 negative, zero counts neither).
func (w *wire) snapshot() rating.Snapshot {
	rs := w.ratings()
	maxSeq := w.u64()
	if w.err != nil {
		return rating.Snapshot{}
	}
	snap := rating.Snapshot{Ratings: rs, MaxSeq: maxSeq, Counts: make(map[rating.PairKey]rating.PairCounts)}
	for _, r := range rs {
		key := rating.PairKey{Rater: r.Rater, Ratee: r.Ratee}
		c := snap.Counts[key]
		if r.Value > 0 {
			c.Positive++
		} else if r.Value < 0 {
			c.Negative++
		}
		snap.Counts[key] = c
	}
	return snap
}

// done returns the latched decode error, or an ErrCorruptFrame if the
// payload carries trailing bytes no field accounted for.
func (w *wire) done() error {
	if w.err != nil {
		return w.err
	}
	if w.off != len(w.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorruptFrame, len(w.b)-w.off)
	}
	return nil
}

// ---- message header ----

type msgHeader struct {
	op    byte
	id    uint64
	shard uint32
}

func parseHeader(payload []byte) (msgHeader, []byte, error) {
	if len(payload) < msgHeaderLen {
		return msgHeader{}, nil, fmt.Errorf("%w: payload %d bytes, header needs %d", ErrCorruptFrame, len(payload), msgHeaderLen)
	}
	h := msgHeader{
		op:    payload[0],
		id:    binary.LittleEndian.Uint64(payload[1:9]),
		shard: binary.LittleEndian.Uint32(payload[9:13]),
	}
	return h, payload[msgHeaderLen:], nil
}

// helloInfo is the opHello body: the overlay geometry this connection serves.
type helloInfo struct {
	version    byte
	numNodes   int
	replicated bool
	shards     []uint32
	reps       []float64
}

func appendHello(b []byte, h helloInfo) []byte {
	b = append(b, h.version)
	b = binary.LittleEndian.AppendUint32(b, uint32(h.numNodes))
	b = appendBool(b, h.replicated)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(h.shards)))
	for _, s := range h.shards {
		b = binary.LittleEndian.AppendUint32(b, s)
	}
	return appendFloats(b, h.reps)
}

func parseHello(body []byte) (helloInfo, error) {
	w := &wire{b: body}
	h := helloInfo{version: w.u8()}
	h.numNodes = int(int32(w.u32()))
	h.replicated = w.bool()
	n := w.count(4)
	if w.err == nil && n > 0 {
		h.shards = make([]uint32, n)
		for i := range h.shards {
			h.shards[i] = w.u32()
		}
	}
	h.reps = w.floats()
	return h, w.done()
}

// restartInfo is the opRestart body. floor covers the primary ledger's WAL
// records (drained primary high-water mark); replicaFloor covers the fated
// records feeding the replica mirror the shard hosts (drained replica
// high-water mark) — the two substrates drain on different schedules, so they
// replay against different floors.
type restartInfo struct {
	floor         uint64
	replicaFloor  uint64
	markRecovered bool
	reps          []float64
}

func appendRestart(b []byte, ri restartInfo) []byte {
	b = binary.LittleEndian.AppendUint64(b, ri.floor)
	b = binary.LittleEndian.AppendUint64(b, ri.replicaFloor)
	b = appendBool(b, ri.markRecovered)
	return appendFloats(b, ri.reps)
}

func parseRestart(body []byte) (restartInfo, error) {
	w := &wire{b: body}
	ri := restartInfo{floor: w.u64(), replicaFloor: w.u64(), markRecovered: w.bool(), reps: w.floats()}
	return ri, w.done()
}

// ---- submit replies ----

// appendSubmitReply encodes an index-aligned per-entry error slice sparsely:
// total entry count, then only the non-nil slots as (index, message) pairs.
// A nil errs — the all-landed common case — costs eight bytes.
func appendSubmitReply(b []byte, n int, errs []error) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	nonNil := 0
	for _, e := range errs {
		if e != nil {
			nonNil++
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(nonNil))
	for i, e := range errs {
		if e != nil {
			b = binary.LittleEndian.AppendUint32(b, uint32(i))
			b = appendString(b, e.Error())
		}
	}
	return b
}

// parseSubmitReply reverses appendSubmitReply. Error messages cross the wire
// as strings and are rebuilt with errors.New: per-entry ledger errors are
// surfaced to callers by message (the typed overlay errors never ride in
// entry slots — transport-level failures travel out of band).
func parseSubmitReply(w *wire) (int, []error) {
	n := int(w.u32())
	m := w.count(4 + 2)
	if w.err != nil {
		return 0, nil
	}
	var errs []error
	for i := 0; i < m; i++ {
		idx := int(w.u32())
		msg := w.str()
		if w.err != nil {
			return 0, nil
		}
		if idx < 0 || idx >= n {
			w.fail("error index %d out of range %d", idx, n)
			return 0, nil
		}
		if errs == nil {
			errs = make([]error, n)
		}
		errs[idx] = errors.New(msg)
	}
	return n, errs
}

// ---- generic replies ----

// appendReplyHeader starts a reply frame body: echoed header plus status.
func appendReplyHeader(b []byte, op byte, id uint64, shard uint32, status byte) []byte {
	b = appendHeader(b, op|replyFlag, id, shard)
	return append(b, status)
}

// parseReplyStatus consumes the status byte (and error message, if any)
// after the header. A non-OK status yields the worker's error as a plain
// error value.
func parseReplyStatus(w *wire) error {
	switch st := w.u8(); {
	case w.err != nil:
		return w.err
	case st == statusOK:
		return nil
	default:
		msg := w.str()
		if w.err != nil {
			return w.err
		}
		return fmt.Errorf("cluster: remote error: %s", msg)
	}
}

// ParsePayload decodes one frame payload — request or reply, any op — and
// discards the result. It exists for the fuzz harness: every byte sequence
// DecodeFrames accepts must also parse without panicking, whichever message
// type it claims to be.
func ParsePayload(payload []byte) error {
	h, body, err := parseHeader(payload)
	if err != nil {
		return err
	}
	w := &wire{b: body}
	if h.op&replyFlag != 0 {
		if err := parseReplyStatus(w); err != nil {
			return err
		}
		switch h.op &^ replyFlag {
		case opSubmitPlain, opSubmitEntries:
			parseSubmitReply(w)
			return w.done()
		case opQuery:
			w.f64()
			return w.done()
		case opDrain:
			w.snapshot()
			if w.bool() {
				w.snapshot()
			}
			return w.done()
		default:
			return w.done()
		}
	}
	switch h.op {
	case opHello:
		_, err := parseHello(body)
		return err
	case opSubmitPlain:
		w.ratings()
		return w.done()
	case opSubmitEntries:
		w.entries()
		return w.done()
	case opQuery:
		w.u32()
		return w.done()
	case opUpdateReps:
		w.floats()
		return w.done()
	case opRestart:
		_, err := parseRestart(body)
		return err
	case opMark, opCompactWAL:
		w.u64()
		return w.done()
	case opDrain, opCrash, opResetWAL:
		return w.done()
	default:
		return fmt.Errorf("%w: unknown op %d", ErrCorruptFrame, h.op)
	}
}
