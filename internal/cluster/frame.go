// Package cluster moves manager shards out of process: worker daemons host
// shard ledgers (and their WALs) behind a socket, and a pipelined client
// implements manager.Transport so the overlay drives them through the same
// batch protocol it uses for in-process mailboxes.
//
// # Wire format
//
// Every message travels in one frame, reusing the STWALv1 framing discipline
// from internal/persist:
//
//	[uint32 LE payload length][uint32 LE CRC32-C of payload][payload]
//
// The payload starts with a fixed header — op (1 byte), request ID
// (8 bytes LE), shard (4 bytes LE) — followed by the op-specific body
// (protocol.go). Replies carry op|0x80 and echo the request ID, so a client
// keeping many requests in flight matches replies by ID regardless of the
// order the worker's per-shard loops finish them in.
//
// Decoding never panics on arbitrary bytes — the same fuzz contract the WAL
// decoder honors: lengths are bounds-checked before allocation, payloads are
// CRC-verified before parsing, and every parse failure is an ErrCorruptFrame
// error.
package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	frameHeaderLen = 8
	// maxFramePayload bounds a frame so a corrupt or hostile length field
	// cannot demand an absurd allocation. The largest legitimate frame is a
	// drain reply carrying a full interval snapshot: ~36 bytes per rating
	// puts a 50k-node, 4-ratings-per-node interval shard at a few megabytes,
	// so 64 MiB leaves an order of magnitude of headroom.
	maxFramePayload = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptFrame reports a torn, truncated, or corrupt wire frame.
var ErrCorruptFrame = errors.New("cluster: corrupt frame")

// beginFrame returns buf reset to a reserved (zeroed) frame header, ready
// for payload appends. finishFrame fills the header in afterwards — the
// payload is encoded exactly once, in place, into a buffer the caller reuses.
func beginFrame(buf []byte) []byte {
	return append(buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
}

// finishFrame stamps the frame header (payload length and CRC) over the
// bytes beginFrame reserved and returns the complete frame.
func finishFrame(buf []byte) []byte {
	payload := buf[frameHeaderLen:]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	return buf
}

// readFrame reads one frame from br, reusing buf when it is large enough,
// and returns the verified payload. io.EOF is returned untouched on a clean
// boundary; anything else — torn header, implausible length, torn payload,
// checksum mismatch — wraps ErrCorruptFrame.
func readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: torn header: %v", ErrCorruptFrame, err)
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return nil, fmt.Errorf("%w: torn header: %v", ErrCorruptFrame, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxFramePayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorruptFrame, n)
	}
	payload := buf
	if cap(payload) < int(n) {
		payload = make([]byte, n)
	}
	payload = payload[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: torn payload: %v", ErrCorruptFrame, err)
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptFrame)
	}
	mFramesRecv.Inc()
	mBytesRecv.Add(int64(frameHeaderLen) + int64(n))
	return payload, nil
}

// DecodeFrames reads framed payloads from r until EOF or the first invalid
// frame, returning the payloads decoded, the byte count of the valid prefix
// consumed, and a non-nil error wrapping ErrCorruptFrame if the stream ended
// in a torn or corrupt frame. It never panics on arbitrary input — the fuzz
// contract (FuzzClusterFrameDecode).
func DecodeFrames(r io.Reader) ([][]byte, int64, error) {
	br := bufio.NewReader(r)
	var (
		payloads [][]byte
		valid    int64
	)
	for {
		p, err := readFrame(br, nil)
		if err == io.EOF {
			return payloads, valid, nil
		}
		if err != nil {
			return payloads, valid, err
		}
		payloads = append(payloads, p)
		valid += int64(frameHeaderLen) + int64(len(p))
	}
}
