// Benchmark harness: one benchmark per table and figure of the paper (run
// with `go test -bench=. -benchmem`), plus the ablation benches DESIGN.md
// calls out. Figure benchmarks execute the registered experiment end-to-end
// on the shortened horizon with a single repetition; ablation benchmarks
// additionally report the outcome metrics (colluder reputation ratio,
// request share) via b.ReportMetric so regressions in *effectiveness* are
// visible next to regressions in speed.
package socialtrust_test

import (
	"io"
	"testing"

	"socialtrust"
	"socialtrust/internal/experiments"
	"socialtrust/internal/sim"
)

// benchOpts is the single-repetition quick-horizon configuration used for
// per-figure benchmarks.
func benchOpts() experiments.Options {
	return experiments.Options{Runs: 1, Seed: 1, Quick: true}
}

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- trace figures (Section 3) ---

func BenchmarkFig1TraceReputation(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig2PersonalNetwork(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig3SocialDistance(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4Interest(b *testing.B)        { benchExperiment(b, "fig4") }

// --- simulation figures (Section 5) ---

func BenchmarkFig7NoCollusion(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8PCMB06(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9PCMB02(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10PCMCompromised(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11MCMB06(b *testing.B)         { benchExperiment(b, "fig11") }
func BenchmarkFig12MCMB02(b *testing.B)         { benchExperiment(b, "fig12") }
func BenchmarkFig13MMMB06(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFig14MMMB02(b *testing.B)         { benchExperiment(b, "fig14") }
func BenchmarkFig15Compromised(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16FalsifiedPCM(b *testing.B)   { benchExperiment(b, "fig16") }
func BenchmarkFig17FalsifiedMCM(b *testing.B)   { benchExperiment(b, "fig17") }
func BenchmarkFig18FalsifiedMMM(b *testing.B)   { benchExperiment(b, "fig18") }
func BenchmarkFig19Convergence(b *testing.B)    { benchExperiment(b, "fig19") }
func BenchmarkFig20Distance(b *testing.B)       { benchExperiment(b, "fig20") }
func BenchmarkTable1RequestShare(b *testing.B)  { benchExperiment(b, "table1") }

// --- ablations ---

// quickSim runs one shortened-horizon simulation and returns the result.
func quickSim(b *testing.B, cfg sim.Config) *sim.Result {
	b.Helper()
	cfg.QueryCycles = 15
	cfg.SimulationCycles = 12
	res, err := sim.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// collStats returns (mean colluder reputation / mean normal reputation).
func collOverNorm(cfg sim.Config, res *sim.Result) float64 {
	coll, norm := 0.0, 0.0
	nColl, nNorm := 0, 0
	for id, v := range res.FinalReputations {
		switch cfg.Type(id) {
		case sim.Colluder:
			coll += v
			nColl++
		case sim.Normal:
			norm += v
			nNorm++
		}
	}
	if nColl == 0 || nNorm == 0 || norm == 0 {
		return 0
	}
	return (coll / float64(nColl)) / (norm / float64(nNorm))
}

// BenchmarkAblationSingleSignal compares the combined Equation 9 filter with
// the closeness-only (Eq. 6) and similarity-only (Eq. 8) variants.
func BenchmarkAblationSingleSignal(b *testing.B) {
	variants := []struct {
		name                  string
		closeness, similarity bool
	}{
		{"both", true, true},
		{"closeness-only", true, false},
		{"similarity-only", false, true},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var ratio, share float64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(sim.PCM, sim.EngineEigenTrust, 0.6, true)
				cfg.Filter.UseCloseness = v.closeness
				cfg.Filter.UseSimilarity = v.similarity
				res := quickSim(b, cfg)
				ratio = collOverNorm(cfg, res)
				share = res.ColluderRequestShare()
			}
			b.ReportMetric(ratio, "coll/norm")
			b.ReportMetric(share*100, "%share")
		})
	}
}

// BenchmarkAblationStaticSocial compares the falsification-resistant
// weighted closeness/similarity (Equations 10/11) against the static forms
// under the falsified-social-information attack. The sim enables the
// weighted forms automatically when FalsifiedSocialInfo is set, so the
// static variant disables the attack flag's hardening by running the attack
// against a filter configured with plain parameters.
func BenchmarkAblationStaticSocial(b *testing.B) {
	for _, hardened := range []bool{true, false} {
		name := "weighted-eq10-11"
		if !hardened {
			name = "static-eq4-7"
		}
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(sim.PCM, sim.EngineEigenTrust, 0.6, true)
				cfg.FalsifiedSocialInfo = true
				if !hardened {
					// Force the static signal forms despite the attack.
					cfg.Filter.Closeness.Weighted = false
					cfg.Filter.Closeness.MaxPathHops = 6
					cfg.Filter.WeightedSimilarity = false
				}
				res := quickSim(b, cfg)
				ratio = collOverNorm(cfg, res)
			}
			b.ReportMetric(ratio, "coll/norm")
		})
	}
}

// BenchmarkAblationPretrustMix contrasts the paper's stated pretrust mixing
// weight a=0.5 (which pins ≥5.5% of all trust on each pretrusted peer) with
// the a=0.15 default the reproduction uses.
func BenchmarkAblationPretrustMix(b *testing.B) {
	for _, mix := range []float64{0.15, 0.5} {
		name := "a=0.15"
		if mix == 0.5 {
			name = "a=0.50"
		}
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(sim.PCM, sim.EngineEigenTrust, 0.6, false)
				cfg.PretrustMix = mix
				res := quickSim(b, cfg)
				ratio = collOverNorm(cfg, res)
			}
			b.ReportMetric(ratio, "coll/norm")
		})
	}
}

// BenchmarkSimQueryCycleParallel measures the simulator's concurrent
// query-intent phase at different worker counts.
func BenchmarkSimQueryCycleParallel(b *testing.B) {
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "serial", 4: "workers-4"}[workers]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig(sim.PCM, sim.EngineEigenTrust, 0.6, true)
				cfg.QueryCycles = 10
				cfg.SimulationCycles = 5
				cfg.Workers = workers
				cfg.Filter.Workers = workers
				if _, err := sim.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFilterAdjust measures one SocialTrust filtering pass over a busy
// interval through the public API.
func BenchmarkFilterAdjust(b *testing.B) {
	const n = 200
	g := socialtrust.NewGraph(n)
	sets := make([]socialtrust.InterestSet, n)
	for i := 0; i < n; i++ {
		g.AddRelationship(socialtrust.NodeID(i), socialtrust.NodeID((i+1)%n),
			socialtrust.Relationship{Kind: socialtrust.Friendship})
		sets[i] = socialtrust.NewInterestSet(1, socialtrust.Category(2+i%5))
	}
	tracker := socialtrust.NewTracker(n)
	ledger := socialtrust.NewLedger(n)
	for i := 0; i < n; i++ {
		for d := 1; d <= 5; d++ {
			ledger.Add(socialtrust.Rating{Rater: i, Ratee: (i + d) % n, Value: 1}) //nolint:errcheck
			g.RecordInteraction(socialtrust.NodeID(i), socialtrust.NodeID((i+d)%n), 1)
		}
	}
	for k := 0; k < 300; k++ {
		ledger.Add(socialtrust.Rating{Rater: 0, Ratee: 100, Value: 1}) //nolint:errcheck
		g.RecordInteraction(0, 100, 1)
	}
	snap := ledger.EndInterval()
	filter := socialtrust.NewFilter(socialtrust.FilterConfig{NumNodes: n},
		g, sets, tracker, socialtrust.NewEBayEngine(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		filter.Adjust(snap)
	}
}
