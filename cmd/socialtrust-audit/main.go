// Command socialtrust-audit analyzes a decision-audit directory written by
// an audited simulation run (socialtrust-sim -audit, stress -audit, or any
// program setting SimConfig.AuditDir): it joins the flight recorder's
// FilterDecision events against the run's ground truth and reports how well
// the B1–B4 behaviors detected the real collusion edges.
//
//	socialtrust-audit <dir>                  # detection-quality table
//	socialtrust-audit -per-cycle <dir>       # plus one line per cycle
//	socialtrust-audit -json <dir>            # merged JSON report on stdout
//	socialtrust-audit -rater 12 <dir>        # decisions by rater 12
//	socialtrust-audit -behavior B3 <dir>     # decisions where B3 fired
//	socialtrust-audit -cycle 5 <dir>         # decisions in cycle 5
//
// The filter flags (-rater, -ratee, -behavior, -cycle) compose; when any is
// given, the matching decisions are listed with their full evidence chain
// instead of the aggregate table.
//
// When the audited run was subjected to fault injection (socialtrust-sim
// -fault-drop/-fault-crash), its injected-event log is summarized under the
// detection table and embedded in the -json report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"socialtrust"
)

func main() {
	var (
		rater    = flag.Int("rater", -1, "only decisions by this rater")
		ratee    = flag.Int("ratee", -1, "only decisions against this ratee")
		behavior = flag.String("behavior", "", "only decisions where this behavior fired (B1|B2|B3|B4)")
		cycle    = flag.Int("cycle", 0, "only decisions in this 1-based cycle")
		perCycle = flag.Bool("per-cycle", false, "also print the per-cycle detection table")
		asJSON   = flag.Bool("json", false, "emit the merged report (ground truth + scores) as JSON")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: socialtrust-audit [flags] <audit-dir>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	wantMask, err := parseBehavior(*behavior)
	if err != nil {
		fmt.Fprintf(os.Stderr, "socialtrust-audit: %v\n", err)
		os.Exit(2)
	}

	gt, events, err := socialtrust.LoadAuditDir(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "socialtrust-audit: %v\n", err)
		os.Exit(1)
	}
	faults, err := socialtrust.LoadFaultEvents(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "socialtrust-audit: %v\n", err)
		os.Exit(1)
	}

	// Filtered forensics view: list matching decisions instead of scoring.
	if *rater >= 0 || *ratee >= 0 || wantMask != 0 || *cycle > 0 {
		listDecisions(gt, events, *rater, *ratee, wantMask, *cycle)
		return
	}

	rep := socialtrust.ScoreDetection(gt, events)
	if *asJSON {
		out := struct {
			GroundTruth socialtrust.AuditGroundTruth `json:"ground_truth"`
			Report      socialtrust.DetectionReport  `json:"report"`
			FaultEvents []socialtrust.FaultEvent     `json:"fault_events,omitempty"`
		}{gt, rep, faults}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "socialtrust-audit: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := rep.WriteTable(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "socialtrust-audit: %v\n", err)
		os.Exit(1)
	}
	if len(faults) > 0 {
		fmt.Println()
		printFaultSummary(faults)
	}
	if *perCycle {
		fmt.Println()
		if err := rep.WritePerCycle(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "socialtrust-audit: %v\n", err)
			os.Exit(1)
		}
	}
}

// printFaultSummary condenses the run's injected-fault log into one line per
// event kind, in a deterministic order.
func printFaultSummary(events []socialtrust.FaultEvent) {
	counts := make(map[string]int)
	for _, e := range events {
		counts[e.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("injected faults (%d events):", len(events))
	for _, k := range kinds {
		fmt.Printf(" %s=%d", k, counts[k])
	}
	fmt.Println()
}

// parseBehavior maps "B1".."B4" (or a "B1|B3" union) to a behavior mask.
func parseBehavior(s string) (socialtrust.Behavior, error) {
	if s == "" {
		return 0, nil
	}
	var mask socialtrust.Behavior
	for _, tok := range strings.Split(s, "|") {
		switch strings.ToUpper(strings.TrimSpace(tok)) {
		case "B1":
			mask |= socialtrust.B1
		case "B2":
			mask |= socialtrust.B2
		case "B3":
			mask |= socialtrust.B3
		case "B4":
			mask |= socialtrust.B4
		default:
			return 0, fmt.Errorf("unknown behavior %q (want B1..B4)", tok)
		}
	}
	return mask, nil
}

// listDecisions prints every FilterDecision matching the filters, flagging
// whether its pair is a real collusion edge in the ground truth.
func listDecisions(gt socialtrust.AuditGroundTruth, events []socialtrust.AuditEvent,
	rater, ratee int, mask socialtrust.Behavior, cycle int) {

	type pair struct{ from, to int }
	truth := make(map[pair]bool)
	for _, e := range gt.Edges {
		truth[pair{e.From, e.To}] = true
	}

	fmt.Printf("%-6s %6s %6s %-9s %7s %7s %5s %5s %8s %8s %8s %9s %9s %s\n",
		"cycle", "rater", "ratee", "behavior", "close", "simil",
		"pos", "neg", "gauss", "freq", "weight", "pre", "post", "truth")
	shown := 0
	for _, e := range events {
		d := e.Filter
		if d == nil {
			continue
		}
		if rater >= 0 && d.Rater != rater {
			continue
		}
		if ratee >= 0 && d.Ratee != ratee {
			continue
		}
		if mask != 0 && socialtrust.Behavior(d.Mask)&mask == 0 {
			continue
		}
		if cycle > 0 && d.Interval != cycle {
			continue
		}
		verdict := "miss"
		if truth[pair{d.Rater, d.Ratee}] {
			verdict = "EDGE"
		}
		fmt.Printf("%-6d %6d %6d %-9s %7.3f %7.3f %5d %5d %8.4f %8.4f %8.4f %9.2f %9.2f %s\n",
			d.Interval, d.Rater, d.Ratee, d.Behaviors, d.Closeness, d.Similarity,
			d.Positive, d.Negative, d.GaussianWeight, d.FreqScale, d.Weight,
			d.PreValue, d.PostValue, verdict)
		shown++
	}
	fmt.Printf("%d matching decision(s)\n", shown)
}
