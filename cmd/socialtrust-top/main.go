// Command socialtrust-top is a live terminal dashboard for the ops plane:
// it polls /statusz on a process started with -health-addr (socialtrust-sim
// or stress) and renders per-component health verdicts, throughput, mailbox
// depth, interval phase times, runtime footprint and sparkline trends.
//
//	socialtrust-sim -audit out/ -health-addr :9091 &
//	socialtrust-top -addr localhost:9091
//
//	socialtrust-top -once          # one frame, no screen control (scripts/CI)
//	socialtrust-top -interval 2s   # slower refresh
//
// With a comma-separated -addr list it watches a whole cluster — the
// coordinator plus each socialtrust-shardd worker's ops endpoint — and
// renders a fleet view: one column per process, one row per health
// component, plus per-process throughput and footprint.
//
//	stress -nodes 10k -cluster 4 -worker-health-base 9101 -health-addr :9091 &
//	socialtrust-top -addr localhost:9091,localhost:9101,localhost:9102,localhost:9103,localhost:9104
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"socialtrust/internal/obs/health"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:9091", "host:port of the ops plane (-health-addr of the watched process); a comma-separated list renders the fleet view, one column per process")
		interval = flag.Duration("interval", time.Second, "refresh cadence")
		once     = flag.Bool("once", false, "render one frame without screen control and exit")
	)
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "socialtrust-top: -addr lists no endpoints")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 5 * time.Second}

	if len(addrs) > 1 {
		watchFleet(client, addrs, *interval, *once)
		return
	}

	url := "http://" + addrs[0] + "/statusz"
	for {
		p, err := fetch(client, url)
		if err != nil {
			if *once {
				fmt.Fprintf(os.Stderr, "socialtrust-top: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("\x1b[2J\x1b[H(waiting for %s: %v)\n", url, err)
		} else {
			var b strings.Builder
			render(&b, p, !*once)
			if !*once {
				fmt.Print("\x1b[2J\x1b[H")
			}
			os.Stdout.WriteString(b.String())
			if *once {
				if p.Overall == health.StatusFailing {
					os.Exit(1)
				}
				return
			}
		}
		time.Sleep(*interval)
	}
}

// watchFleet polls every endpoint each cadence and renders the multi-process
// view. In -once mode the exit status is 1 if any reachable process reports
// an overall failing verdict or any endpoint is unreachable.
func watchFleet(client *http.Client, addrs []string, interval time.Duration, once bool) {
	for {
		payloads := make([]*health.StatusPayload, len(addrs))
		errs := make([]error, len(addrs))
		for i, a := range addrs {
			p, err := fetch(client, "http://"+a+"/statusz")
			if err != nil {
				errs[i] = err
				continue
			}
			payloads[i] = &p
		}
		var b strings.Builder
		renderFleet(&b, addrs, payloads, errs, !once)
		if !once {
			fmt.Print("\x1b[2J\x1b[H")
		}
		os.Stdout.WriteString(b.String())
		if once {
			for i := range addrs {
				if errs[i] != nil || payloads[i].Overall == health.StatusFailing {
					os.Exit(1)
				}
			}
			return
		}
		time.Sleep(interval)
	}
}

// renderFleet draws the multi-process frame: a component-by-process verdict
// matrix followed by one stats line per process. The first endpoint is
// conventionally the coordinator; the rest are workers.
func renderFleet(w io.Writer, addrs []string, payloads []*health.StatusPayload, errs []error, color bool) {
	fmt.Fprintf(w, "socialtrust-top  fleet of %d processes\n\n", len(addrs))

	// Union of component names across the fleet, first-seen order.
	var comps []string
	seen := map[string]bool{}
	for _, p := range payloads {
		if p == nil {
			continue
		}
		for _, c := range p.Components {
			if !seen[c.Name] {
				seen[c.Name] = true
				comps = append(comps, c.Name)
			}
		}
	}

	colW := 12
	for _, a := range addrs {
		if len(a) > colW {
			colW = len(a)
		}
	}
	fmt.Fprintf(w, "  %-12s", "component")
	for _, a := range addrs {
		fmt.Fprintf(w, "  %-*s", colW, a)
	}
	fmt.Fprintln(w)

	row := func(name string, cell func(i int) string) {
		fmt.Fprintf(w, "  %-12s", name)
		for i := range addrs {
			c := cell(i)
			// ANSI escapes break %-*s padding; pad the visible text instead.
			fmt.Fprintf(w, "  %s%s", c, strings.Repeat(" ", max(0, colW-visibleLen(c))))
		}
		fmt.Fprintln(w)
	}

	row("overall", func(i int) string {
		if errs[i] != nil {
			return "unreachable"
		}
		return paint(payloads[i].Overall, color)
	})
	for _, name := range comps {
		row(name, func(i int) string {
			if errs[i] != nil {
				return "-"
			}
			for _, c := range payloads[i].Components {
				if c.Name == name {
					return paint(c.Status, color)
				}
			}
			return "-"
		})
	}

	fmt.Fprintln(w)
	for i, a := range addrs {
		if errs[i] != nil {
			fmt.Fprintf(w, "  %-*s  (waiting: %v)\n", colW, a, errs[i])
			continue
		}
		p := payloads[i]
		var cur *health.Sample
		if len(p.Window) > 0 {
			cur = &p.Window[len(p.Window)-1]
		}
		if cur == nil {
			fmt.Fprintf(w, "  %-*s  up %s\n", colW, a,
				(time.Duration(p.UptimeSeconds * float64(time.Second))).Round(time.Second))
			continue
		}
		ratingsPS := last(rates(p.Window, func(s *health.Sample) float64 { return s.Submits }))
		fmt.Fprintf(w, "  %-*s  up %-8s ratings/s %-9.0f rss %-10s goroutines %-6d shards %g (%g down)\n",
			colW, a,
			(time.Duration(p.UptimeSeconds * float64(time.Second))).Round(time.Second),
			ratingsPS, fmtBytes(float64(cur.RSSBytes)), cur.Goroutines, cur.Shards, cur.ShardsDown)
	}
}

// visibleLen counts the characters a terminal renders: ANSI color escapes
// contribute zero width.
func visibleLen(s string) int {
	n := 0
	inEsc := false
	for _, r := range s {
		switch {
		case inEsc:
			if r == 'm' {
				inEsc = false
			}
		case r == '\x1b':
			inEsc = true
		default:
			n++
		}
	}
	return n
}

// fetch pulls and decodes one /statusz payload.
func fetch(client *http.Client, url string) (health.StatusPayload, error) {
	var p health.StatusPayload
	resp, err := client.Get(url)
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return p, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return p, fmt.Errorf("%s: decode: %w", url, err)
	}
	return p, nil
}

// sparkBlocks are the eight block characters a sparkline quantizes into.
var sparkBlocks = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last width values as a block-character trend,
// normalized to the series' own min..max (a flat series renders low).
func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkBlocks)-1))
		}
		b.WriteRune(sparkBlocks[i])
	}
	return b.String()
}

// rates derives a per-second rate series from a cumulative counter across
// the sampled window, using each sample's wall-clock stamp.
func rates(w []health.Sample, value func(*health.Sample) float64) []float64 {
	var out []float64
	for i := 1; i < len(w); i++ {
		dt := float64(w[i].UnixNanos-w[i-1].UnixNanos) / 1e9
		if dt <= 0 {
			continue
		}
		d := value(&w[i]) - value(&w[i-1])
		if d < 0 {
			d = 0 // counter reset (watched process restarted)
		}
		out = append(out, d/dt)
	}
	return out
}

// last returns the final element of a series, or 0.
func last(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return vals[len(vals)-1]
}

// paint wraps s in an ANSI color matched to the verdict when color is on.
func paint(s health.Status, color bool) string {
	if !color {
		return s.String()
	}
	code := "32" // green
	switch s {
	case health.StatusDegraded:
		code = "33" // yellow
	case health.StatusFailing:
		code = "31" // red
	}
	return "\x1b[" + code + "m" + s.String() + "\x1b[0m"
}

// fmtBytes renders a byte count human-readably (base 1024).
func fmtBytes(b float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB"}
	i := 0
	for b >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	return fmt.Sprintf("%.1f%s", b, units[i])
}

// render draws one dashboard frame from a /statusz payload.
func render(w io.Writer, p health.StatusPayload, color bool) {
	const sparkWidth = 48
	win := p.Window
	var cur *health.Sample
	if len(win) > 0 {
		cur = &win[len(win)-1]
	}

	fmt.Fprintf(w, "socialtrust-top  overall %s  worst %s  up %s  samples %d (every %.2gs)\n",
		paint(p.Overall, color), paint(p.WorstOverall, color),
		(time.Duration(p.UptimeSeconds * float64(time.Second))).Round(time.Second),
		p.Samples, p.SampleIntervalSeconds)
	if p.SLOIntervalSeconds > 0 {
		fmt.Fprintf(w, "interval SLO budget %.3gs\n", p.SLOIntervalSeconds)
	}
	fmt.Fprintln(w)

	// Component verdicts with the details of any non-ok rules.
	for _, c := range p.Components {
		fmt.Fprintf(w, "  %-12s %s\n", c.Name, paint(c.Status, color))
		for _, r := range c.Rules {
			if r.Status != health.StatusOK {
				fmt.Fprintf(w, "    %-26s %-9s %s\n", r.Rule, paint(r.Status, color), r.Detail)
			}
		}
	}
	fmt.Fprintln(w)

	if cur != nil {
		ratingsPS := rates(win, func(s *health.Sample) float64 { return s.Submits })
		depth := make([]float64, len(win))
		heap := make([]float64, len(win))
		for i := range win {
			depth[i] = win[i].MailboxDepth
			heap[i] = float64(win[i].HeapBytes)
		}
		fmt.Fprintf(w, "  ratings/s  %10.0f  %s\n", last(ratingsPS), sparkline(ratingsPS, sparkWidth))
		fmt.Fprintf(w, "  mailbox    %10.0f  %s\n", cur.MailboxDepth, sparkline(depth, sparkWidth))
		fmt.Fprintf(w, "  heap       %10s  %s\n", fmtBytes(float64(cur.HeapBytes)), sparkline(heap, sparkWidth))
		fmt.Fprintf(w, "  goroutines %10d   rss %s   shards %g (%g down)   qps %.0f\n",
			cur.Goroutines, fmtBytes(float64(cur.RSSBytes)), cur.Shards, cur.ShardsDown, cur.QPS)

		// Phase attribution of the work completed across the window: deltas
		// of the drain/adjust/iterate histogram sums.
		if len(win) > 1 {
			first := &win[0]
			drain := cur.DrainSeconds - first.DrainSeconds
			adjust := cur.AdjustSeconds - first.AdjustSeconds
			iterate := cur.IterateSeconds - first.IterateSeconds
			if total := drain + adjust + iterate; total > 0 {
				fmt.Fprintf(w, "  phases (window)   drain %.1f%%   adjust %.1f%%   iterate %.1f%%   last interval %.3fs\n",
					100*drain/total, 100*adjust/total, 100*iterate/total, cur.LastIntervalSeconds)
			}
		}
	}

	if len(p.Events) > 0 {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "  recent health events:")
		evs := p.Events
		if len(evs) > 8 {
			evs = evs[len(evs)-8:]
		}
		for _, e := range evs {
			fmt.Fprintf(w, "    #%-5d %-26s %-10s %s → %s  %s\n",
				e.Sample, e.Rule, e.Component, e.Prev, e.Status, e.Detail)
		}
	}
}
