package main

import (
	"strings"
	"testing"

	"socialtrust/internal/obs/health"
)

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	got := sparkline([]float64{0, 1, 2, 3}, 10)
	if !strings.HasPrefix(got, "▁") || !strings.HasSuffix(got, "█") {
		t.Fatalf("rising sparkline = %q, want ▁..█", got)
	}
	// Flat series renders low, not mid-scale noise.
	if got := sparkline([]float64{5, 5, 5}, 10); got != "▁▁▁" {
		t.Fatalf("flat sparkline = %q, want ▁▁▁", got)
	}
	// Width truncates to the most recent values.
	if got := sparkline([]float64{9, 0, 1}, 2); len([]rune(got)) != 2 {
		t.Fatalf("truncated sparkline = %q, want 2 runes", got)
	}
}

func TestRates(t *testing.T) {
	w := []health.Sample{
		{UnixNanos: 0, Submits: 0},
		{UnixNanos: 1e9, Submits: 500},
		{UnixNanos: 3e9, Submits: 700},
		{UnixNanos: 4e9, Submits: 100}, // counter reset
	}
	got := rates(w, func(s *health.Sample) float64 { return s.Submits })
	want := []float64{500, 100, 0}
	if len(got) != len(want) {
		t.Fatalf("rates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rates[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRenderFrame(t *testing.T) {
	p := health.StatusPayload{
		Overall:               health.StatusDegraded,
		WorstOverall:          health.StatusDegraded,
		UptimeSeconds:         12,
		SampleIntervalSeconds: 1,
		SLOIntervalSeconds:    2,
		Samples:               3,
		Components: []health.ComponentStatus{
			{Name: "manager", Status: health.StatusDegraded, Rules: []health.RuleStatus{
				{Rule: "shard-outage", Status: health.StatusDegraded, Detail: "1 of 4 shards down"},
			}},
			{Name: "sim", Status: health.StatusOK, Rules: []health.RuleStatus{{Rule: "interval-slo"}}},
		},
		Window: []health.Sample{
			{Seq: 1, UnixNanos: 1e9, Submits: 0, MailboxDepth: 2, HeapBytes: 1 << 20, Goroutines: 12, Shards: 4},
			{Seq: 2, UnixNanos: 2e9, Submits: 1000, MailboxDepth: 5, HeapBytes: 2 << 20, Goroutines: 14, Shards: 4,
				ShardsDown: 1, DrainSeconds: 0.2, AdjustSeconds: 0.5, IterateSeconds: 0.3, LastIntervalSeconds: 1.1},
		},
		Events: []health.HealthEvent{
			{Sample: 2, Rule: "shard-outage", Component: "manager", Prev: "ok", Status: "degraded", Detail: "1 of 4 shards down"},
		},
	}
	var b strings.Builder
	render(&b, p, false)
	out := b.String()
	for _, want := range []string{
		"overall degraded",
		"shard-outage",
		"1 of 4 shards down",
		"ratings/s",
		"1000",
		"mailbox",
		"phases (window)",
		"adjust 50.0%",
		"recent health events",
		"ok → degraded",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Fatalf("color-off frame contains ANSI escapes:\n%s", out)
	}
}
