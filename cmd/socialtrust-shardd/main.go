// Command socialtrust-shardd is the cluster worker daemon: it hosts manager
// shards behind a socket, speaking the framed batch protocol the coordinator's
// cluster client drives, and owns the hosted shards' write-ahead logs.
//
//	socialtrust-shardd -listen unix:/tmp/w0.sock -state-dir /var/lib/st/w0
//	socialtrust-shardd -listen tcp:127.0.0.1:7401 -health :9101 -fsync always
//
// SIGTERM drains gracefully: in-flight batches finish, WAL tails sync,
// /readyz turns 503, and the process exits 0. The same binary also starts as
// a worker when spawned with SOCIALTRUST_SHARDD_LISTEN set (the self-exec
// path the simulator and stress harness use).
package main

import (
	"flag"
	"fmt"
	"os"

	"socialtrust/internal/cluster"
)

func main() {
	cluster.WorkerMainIfChild()
	var (
		listen   = flag.String("listen", "", "serving address: unix:/path, tcp:host:port, or host:port (required)")
		stateDir = flag.String("state-dir", "", "per-shard WAL directory (empty = no worker-side durability)")
		fsync    = flag.String("fsync", "marks", "WAL fsync policy: marks|always|never")
		health   = flag.String("health", "", "ops endpoint address serving /healthz /readyz /statusz /metrics")
		pprof    = flag.Bool("pprof", false, "also serve /debug/pprof on the ops endpoint")
		linger   = flag.Duration("linger", 0, "keep serving readiness-down for this long after a drain completes")
	)
	flag.Parse()
	if *listen == "" {
		fmt.Fprintln(os.Stderr, "socialtrust-shardd: -listen is required")
		os.Exit(2)
	}
	policy, err := cluster.ParseFsync(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "socialtrust-shardd:", err)
		os.Exit(2)
	}
	cfg := cluster.Config{
		Listen:     *listen,
		StateDir:   *stateDir,
		HealthAddr: *health,
		Pprof:      *pprof,
		Linger:     *linger,
	}
	cfg.Persist.Fsync = policy
	if err := cluster.NewWorker(cfg).RunSignals(); err != nil {
		fmt.Fprintln(os.Stderr, "socialtrust-shardd:", err)
		os.Exit(1)
	}
}
