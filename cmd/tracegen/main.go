// Command tracegen generates the synthetic Overstock-like transaction trace
// (the stand-in for the paper's proprietary 450k-rating crawl) and runs the
// full Section 3 analysis over it: Figures 1–4, observations O1–O6, and the
// calibration statistics SocialTrust's thresholds derive from.
//
//	tracegen                 # default scaled-down trace (2,000 users)
//	tracegen -users 10000    # bigger population
//	tracegen -csv trace.csv  # also dump the raw transaction log
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"socialtrust/internal/trace"
)

func main() {
	var (
		users   = flag.Int("users", 0, "number of users (default 2000)")
		months  = flag.Int("months", 0, "months of market activity (default 24)")
		perMo   = flag.Int("tpm", 0, "transactions per month (default = users)")
		seed    = flag.Uint64("seed", 1, "random seed")
		csvPath = flag.String("csv", "", "optional path to dump the transaction log as CSV")
	)
	flag.Parse()

	cfg := trace.Default()
	if *users > 0 {
		cfg.NumUsers = *users
	}
	if *months > 0 {
		cfg.Months = *months
	}
	if *perMo > 0 {
		cfg.TransactionsPerMonth = *perMo
	}
	cfg.Seed = *seed

	ds, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("generated %d users, %d transactions over %d months\n\n",
		len(ds.Users), len(ds.Transactions), cfg.Months)

	biz := ds.BusinessNetworkVsReputation()
	fmt.Printf("Figure 1(a): C(reputation, business network) = %.3f (paper: 0.996)\n", biz.C)
	tx := ds.TransactionsVsReputation()
	fmt.Printf("Figure 1(b): C(reputation, transactions)     = %.3f (proportional)\n", tx.C)
	per := ds.PersonalNetworkVsReputation()
	fmt.Printf("Figure 2:    C(reputation, personal network) = %.3f (paper: 0.092)\n\n", per.C)

	fmt.Println("Figure 3: ratings by social distance")
	for _, b := range ds.RatingsByDistance() {
		fmt.Printf("  distance %d: avg rating %.2f, avg ratings/pair %.2f (%d pairs)\n",
			b.Distance, b.AvgRating, b.AvgCount, b.Pairs)
	}

	fmt.Println("\nFigure 4(a): purchase share by category rank")
	for _, r := range ds.CategoryRankCDF(7, 5) {
		fmt.Printf("  rank %d: share %.3f, cumulative %.3f\n", r.Rank, r.Share, r.CDF)
	}

	fmt.Println("\nFigure 4(b): transactions by interest similarity")
	for _, b := range ds.TransactionsBySimilarity(10) {
		fmt.Printf("  similarity <= %.1f: CDF %.3f\n", b.Similarity, b.CDF)
	}
	fmt.Printf("  share above 0.3 similarity: %.3f (paper ≈ 0.6)\n", ds.ShareAboveSimilarity(0.3))

	mean, min, max := ds.PairSimilarityStats()
	fs := ds.RatingFrequencies()
	fmt.Printf("\ncalibration: pair similarity mean/min/max = %.3f/%.2f/%.2f (paper 0.423/0.13/1)\n", mean, min, max)
	fmt.Printf("calibration: mean rating frequency %.2f/month (paper 2.2), max positive %g, max negative %g\n",
		fs.MeanPerMonth, fs.MaxPositive, fs.MaxNegative)

	fmt.Println("\nObservation verdicts (paper Section 3):")
	for _, o := range ds.Observations() {
		fmt.Printf("  %s\n", o)
	}

	if *csvPath != "" {
		if err := dumpCSV(ds, *csvPath); err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntransaction log written to %s\n", *csvPath)
	}
}

func dumpCSV(ds *trace.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"buyer", "seller", "category", "rating", "month"}); err != nil {
		return err
	}
	for _, tx := range ds.Transactions {
		rec := []string{
			strconv.Itoa(tx.Buyer),
			strconv.Itoa(tx.Seller),
			strconv.Itoa(int(tx.Category)),
			strconv.FormatFloat(tx.Rating, 'f', -1, 64),
			strconv.Itoa(tx.Month),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
