// Command socialtrust-trace analyzes the interval trace of a traced
// simulation run (socialtrust-sim -trace-dir, stress -trace, or any program
// setting SimConfig.TraceDir): it rolls the hierarchical span stream up into
// a per-interval phase-attribution table, extracts each interval's critical
// path, and ranks span sites by aggregate self time.
//
//	socialtrust-trace <dir | spans.jsonl>       # phase table, critical paths, top-k
//	socialtrust-trace -topk 5 <input>           # shorter self-time ranking
//	socialtrust-trace -critical=false <input>   # suppress per-interval paths
//	socialtrust-trace -json <input>             # phase summary JSON on stdout
//	socialtrust-trace -diff <a> <b>             # A/B phase comparison
//	socialtrust-trace -diff -threshold 0.1 a b  # stricter regression gate
//
// Inputs compose across formats: a trace/audit directory (trace_spans.jsonl
// inside it), a bare span JSONL file, or — for -diff — a phase summary JSON
// as emitted by -json (the BENCH_trace.json schema). Diff mode compares the
// mean per-interval phase seconds of two inputs and exits nonzero when any
// phase of B is slower than A by more than -threshold (relative, with a 1 ms
// absolute floor so micro-runs don't flag on noise).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"socialtrust"
)

func main() {
	var (
		topk      = flag.Int("topk", 10, "how many span sites to rank by aggregate self time")
		critical  = flag.Bool("critical", true, "print each interval's critical path")
		asJSON    = flag.Bool("json", false, "emit the phase summary as JSON (the BENCH_trace.json schema)")
		diff      = flag.Bool("diff", false, "compare two inputs: socialtrust-trace -diff <a> <b>")
		threshold = flag.Float64("threshold", 0.2, "relative slowdown in any phase mean that fails -diff")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: socialtrust-trace [flags] <dir|spans.jsonl>\n"+
				"       socialtrust-trace -diff [-threshold r] <a> <b>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		a, err := loadSummary(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		b, err := loadSummary(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		if !printDiff(os.Stdout, flag.Arg(0), a, flag.Arg(1), b, *threshold) {
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	spans, err := loadSpans(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if len(spans) == 0 {
		fatal(fmt.Errorf("%s holds no spans (was the run traced?)", flag.Arg(0)))
	}
	sum := summarize(spans)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatal(err)
		}
		return
	}

	printPhaseTable(sum)
	if *critical {
		fmt.Println()
		printCriticalPaths(spans)
	}
	fmt.Println()
	printSelfTime(spans, *topk)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "socialtrust-trace: %v\n", err)
	os.Exit(1)
}

// summary is the phase-attribution rollup of one trace — the schema of
// scripts/bench.sh trace's BENCH_trace.json and of -json output.
type summary struct {
	Intervals    int                            `json:"intervals"`
	PhasesMean   map[string]float64             `json:"phases_mean_seconds"`
	CoverageMean float64                        `json:"coverage_mean"`
	PerInterval  []socialtrust.TraceAttribution `json:"per_interval,omitempty"`
}

// loadSpans reads a span stream from a trace/audit directory or a bare
// JSONL file.
func loadSpans(path string) ([]socialtrust.TraceSpan, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		spans, err := socialtrust.LoadTraceDir(path)
		if err != nil {
			return nil, err
		}
		if spans == nil {
			return nil, fmt.Errorf("%s holds no trace (was the run traced?)", path)
		}
		return spans, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return socialtrust.ReadTraceSpans(f)
}

// loadSummary loads a phase summary from any accepted input: a directory or
// span JSONL (summarized on the fly), or a summary JSON written by -json.
func loadSummary(path string) (summary, error) {
	st, err := os.Stat(path)
	if err != nil {
		return summary{}, err
	}
	if !st.IsDir() {
		b, err := os.ReadFile(path)
		if err != nil {
			return summary{}, err
		}
		if t := bytes.TrimLeft(b, " \t\r\n"); len(t) > 0 && t[0] == '{' {
			var s summary
			if err := json.Unmarshal(b, &s); err == nil && s.PhasesMean != nil {
				return s, nil
			}
		}
	}
	spans, err := loadSpans(path)
	if err != nil {
		return summary{}, err
	}
	if len(spans) == 0 {
		return summary{}, fmt.Errorf("%s holds no spans (was the run traced?)", path)
	}
	return summarize(spans), nil
}

func summarize(spans []socialtrust.TraceSpan) summary {
	atts := socialtrust.AttributeTrace(spans)
	s := summary{
		Intervals:   len(atts),
		PhasesMean:  map[string]float64{},
		PerInterval: atts,
	}
	if len(atts) == 0 {
		return s
	}
	var cov float64
	for _, a := range atts {
		s.PhasesMean["ingest"] += a.Ingest
		s.PhasesMean["drain"] += a.Drain
		s.PhasesMean["adjust"] += a.Adjust
		s.PhasesMean["iterate"] += a.Iterate
		s.PhasesMean["other"] += a.Other()
		s.PhasesMean["total"] += a.Total
		cov += a.Coverage()
	}
	n := float64(len(atts))
	for k := range s.PhasesMean {
		s.PhasesMean[k] /= n
	}
	s.CoverageMean = cov / n
	return s
}

func printPhaseTable(s summary) {
	fmt.Printf("%-9s %10s %10s %10s %10s %10s %10s %9s\n",
		"interval", "total", "ingest", "drain", "adjust", "iterate", "other", "coverage")
	for i, a := range s.PerInterval {
		fmt.Printf("%-9d %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f %8.1f%%\n",
			i+1, a.Total, a.Ingest, a.Drain, a.Adjust, a.Iterate, a.Other(), 100*a.Coverage())
	}
	fmt.Printf("%-9s %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f %8.1f%%\n",
		"mean", s.PhasesMean["total"], s.PhasesMean["ingest"], s.PhasesMean["drain"],
		s.PhasesMean["adjust"], s.PhasesMean["iterate"], s.PhasesMean["other"],
		100*s.CoverageMean)
}

// printCriticalPaths walks each trace from its root, descending at every
// step into the heaviest child — the interval pipeline is sequential, so
// the longest-duration chain is the path that dominated the interval's wall
// time — and prints the path with each hop's duration and self time.
func printCriticalPaths(spans []socialtrust.TraceSpan) {
	byTrace := map[uint64][]socialtrust.TraceSpan{}
	var order []uint64
	for _, sp := range spans {
		if _, ok := byTrace[sp.Trace]; !ok {
			order = append(order, sp.Trace)
		}
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	fmt.Println("critical paths (slowest child chain per interval):")
	for i, tr := range order {
		ts := byTrace[tr]
		children := map[uint64][]socialtrust.TraceSpan{}
		var root socialtrust.TraceSpan
		haveRoot := false
		for _, sp := range ts {
			children[sp.Parent] = append(children[sp.Parent], sp)
			if sp.Parent == 0 && (!haveRoot || sp.DurUS > root.DurUS) {
				root, haveRoot = sp, true
			}
		}
		if !haveRoot {
			continue // ring wraparound evicted this trace's root
		}
		fmt.Printf("  interval %d:\n", i+1)
		for cur, depth := root, 0; ; depth++ {
			self := cur.DurUS
			var next socialtrust.TraceSpan
			haveNext := false
			for _, c := range children[cur.ID] {
				self -= c.DurUS
				if !haveNext || c.DurUS > next.DurUS {
					next, haveNext = c, true
				}
			}
			if self < 0 {
				self = 0
			}
			fmt.Printf("    %s%-28s %10.4fs  self %8.4fs\n",
				strings.Repeat("  ", depth), cur.Name,
				float64(cur.DurUS)/1e6, float64(self)/1e6)
			if !haveNext {
				break
			}
			cur = next
		}
	}
}

// printSelfTime ranks span sites (by name) by aggregate self time — each
// span's duration minus its children's, clamped at zero.
func printSelfTime(spans []socialtrust.TraceSpan, k int) {
	childDur := map[uint64]int64{}
	for _, sp := range spans {
		if sp.Parent != 0 {
			childDur[sp.Parent] += sp.DurUS
		}
	}
	type site struct {
		name  string
		count int
		self  int64
	}
	agg := map[string]*site{}
	for _, sp := range spans {
		self := sp.DurUS - childDur[sp.ID]
		if self < 0 {
			self = 0
		}
		s := agg[sp.Name]
		if s == nil {
			s = &site{name: sp.Name}
			agg[sp.Name] = s
		}
		s.count++
		s.self += self
	}
	sites := make([]*site, 0, len(agg))
	for _, s := range agg {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].self != sites[j].self {
			return sites[i].self > sites[j].self
		}
		return sites[i].name < sites[j].name
	})
	if k > len(sites) {
		k = len(sites)
	}
	fmt.Printf("top %d span sites by aggregate self time:\n", k)
	fmt.Printf("  %-28s %8s %12s %12s\n", "name", "spans", "self", "mean")
	for _, s := range sites[:k] {
		fmt.Printf("  %-28s %8d %11.4fs %11.6fs\n",
			s.name, s.count, float64(s.self)/1e6, float64(s.self)/1e6/float64(s.count))
	}
}

// printDiff compares the mean per-interval phase seconds of two inputs and
// reports true when no phase of b regressed past the threshold. A phase
// regresses when its mean grows by more than threshold relative to a AND by
// more than 1 ms absolute.
func printDiff(w *os.File, nameA string, a summary, nameB string, b summary, threshold float64) bool {
	const absFloor = 1e-3
	phases := []string{"total", "ingest", "drain", "adjust", "iterate", "other"}
	fmt.Fprintf(w, "phase mean comparison (A=%s intervals=%d, B=%s intervals=%d):\n",
		nameA, a.Intervals, nameB, b.Intervals)
	fmt.Fprintf(w, "  %-9s %12s %12s %10s %s\n", "phase", "A", "B", "delta", "verdict")
	ok := true
	for _, p := range phases {
		av, bv := a.PhasesMean[p], b.PhasesMean[p]
		delta := bv - av
		rel := 0.0
		if av > 0 {
			rel = delta / av
		}
		verdict := "ok"
		switch {
		case delta > absFloor && (av == 0 || rel > threshold):
			verdict = "REGRESSION"
			ok = false
		case delta < -absFloor && av > 0 && -rel > threshold:
			verdict = "improved"
		}
		fmt.Fprintf(w, "  %-9s %11.4fs %11.4fs %+9.1f%% %s\n", p, av, bv, 100*rel, verdict)
	}
	fmt.Fprintf(w, "  coverage  %11.1f%% %11.1f%%\n", 100*a.CoverageMean, 100*b.CoverageMean)
	if ok {
		fmt.Fprintln(w, "no phase regression beyond threshold")
	} else {
		fmt.Fprintf(w, "phase regression beyond %.0f%% threshold\n", 100*threshold)
	}
	return ok
}
