// Command socialtrust-sim regenerates the paper's evaluation tables and
// figures. Every experiment from the paper is addressable by id:
//
//	socialtrust-sim -list                 # show all experiments
//	socialtrust-sim -experiment fig8      # reproduce Figure 8
//	socialtrust-sim -experiment table1    # reproduce Table 1
//	socialtrust-sim -experiment fig8,fig9 # several at once
//	socialtrust-sim -experiment all       # run everything
//
// Use -quick for a shortened horizon (15 query cycles × 12 simulation
// cycles instead of the paper's 30 × 50) and -runs to change the number of
// seeded repetitions averaged per configuration (the paper uses 5).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"socialtrust/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		exp    = flag.String("experiment", "", "experiment id to run (or 'all')")
		runs   = flag.Int("runs", 5, "seeded repetitions per configuration")
		seed   = flag.Uint64("seed", 1, "base random seed")
		quick  = flag.Bool("quick", false, "shortened horizon for smoke runs")
		series = flag.Bool("series", false, "also emit per-node reputation vectors as CSV")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, s := range experiments.All() {
			fmt.Printf("  %-8s %s\n           %s\n", s.ID, s.Title, s.Description)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: socialtrust-sim -experiment <id>")
		}
		return
	}

	opts := experiments.Options{Runs: *runs, Seed: *seed, Quick: *quick, NodeSeries: *series}
	var ids []string
	if *exp == "all" {
		for _, s := range experiments.All() {
			ids = append(ids, s.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		if err := experiments.Run(id, opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "socialtrust-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
