// Command socialtrust-sim regenerates the paper's evaluation tables and
// figures. Every experiment from the paper is addressable by id:
//
//	socialtrust-sim -list                 # show all experiments
//	socialtrust-sim -experiment fig8      # reproduce Figure 8
//	socialtrust-sim -experiment table1    # reproduce Table 1
//	socialtrust-sim -experiment fig8,fig9 # several at once
//	socialtrust-sim -experiment all       # run everything
//
// Use -quick for a shortened horizon (15 query cycles × 12 simulation
// cycles instead of the paper's 30 × 50) and -runs to change the number of
// seeded repetitions averaged per configuration (the paper uses 5).
//
// Observability:
//
//	-metrics-addr :9090     serve /metrics (Prometheus text) and
//	                        /metrics.json while experiments run
//	-pprof                  also mount net/http/pprof on the metrics server
//	-metrics-dump text      print a metrics snapshot after each experiment
//	                        (text or json)
//	-v                      periodic progress lines on stderr during runs
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"socialtrust/internal/experiments"
	"socialtrust/internal/obs"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments")
		exp     = flag.String("experiment", "", "experiment id to run (or 'all')")
		runs    = flag.Int("runs", 5, "seeded repetitions per configuration")
		seed    = flag.Uint64("seed", 1, "base random seed")
		quick   = flag.Bool("quick", false, "shortened horizon for smoke runs")
		series  = flag.Bool("series", false, "also emit per-node reputation vectors as CSV")
		mgrs    = flag.Int("managers", 0, "route ratings through a resource-manager overlay of this many shards (0 = direct ledger)")
		mAddr   = flag.String("metrics-addr", "", "serve /metrics and /metrics.json on this address while running")
		mPprof  = flag.Bool("pprof", false, "mount net/http/pprof on the metrics server (requires -metrics-addr)")
		mDump   = flag.String("metrics-dump", "", "print a metrics snapshot after each experiment: text|json")
		verbose = flag.Bool("v", false, "verbose progress logging on stderr")
	)
	flag.Parse()

	if *mDump != "" && *mDump != "text" && *mDump != "json" {
		fmt.Fprintf(os.Stderr, "socialtrust-sim: -metrics-dump must be text or json, got %q\n", *mDump)
		os.Exit(2)
	}
	if *mPprof && *mAddr == "" {
		fmt.Fprintln(os.Stderr, "socialtrust-sim: -pprof requires -metrics-addr")
		os.Exit(2)
	}
	if *mgrs < 0 {
		fmt.Fprintf(os.Stderr, "socialtrust-sim: -managers must be >= 0, got %d\n", *mgrs)
		os.Exit(2)
	}
	if *verbose {
		obs.SetLogLevel(slog.LevelInfo)
	}
	if *mDump != "" || *verbose {
		obs.Enable()
	}
	if *mAddr != "" {
		srv, err := obs.Serve(*mAddr, *mPprof) // Serve enables recording
		if err != nil {
			fmt.Fprintf(os.Stderr, "socialtrust-sim: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics", srv.Addr)
		if *mPprof {
			fmt.Fprintf(os.Stderr, " (pprof on /debug/pprof/)")
		}
		fmt.Fprintln(os.Stderr)
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, s := range experiments.All() {
			fmt.Printf("  %-8s %s\n           %s\n", s.ID, s.Title, s.Description)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: socialtrust-sim -experiment <id>")
		}
		return
	}

	opts := experiments.Options{Runs: *runs, Seed: *seed, Quick: *quick, NodeSeries: *series, Managers: *mgrs}
	var ids []string
	if *exp == "all" {
		for _, s := range experiments.All() {
			ids = append(ids, s.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		if err := experiments.Run(id, opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "socialtrust-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		dumpMetrics(*mDump, id)
	}
}

// dumpMetrics prints the obs snapshot after one experiment in the requested
// format (no-op for an empty format).
func dumpMetrics(format, id string) {
	if format == "" {
		return
	}
	obs.CaptureRuntime()
	fmt.Printf("-- metrics after %s --\n", id)
	var err error
	switch format {
	case "json":
		err = obs.WriteJSON(os.Stdout)
	default:
		err = obs.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "socialtrust-sim: metrics dump: %v\n", err)
	}
	fmt.Println()
}
