// Command socialtrust-sim regenerates the paper's evaluation tables and
// figures. Every experiment from the paper is addressable by id:
//
//	socialtrust-sim -list                 # show all experiments
//	socialtrust-sim -experiment fig8      # reproduce Figure 8
//	socialtrust-sim -experiment table1    # reproduce Table 1
//	socialtrust-sim -experiment fig8,fig9 # several at once
//	socialtrust-sim -experiment all       # run everything
//
// Use -quick for a shortened horizon (15 query cycles × 12 simulation
// cycles instead of the paper's 30 × 50) and -runs to change the number of
// seeded repetitions averaged per configuration (the paper uses 5).
//
// Observability:
//
//	-metrics-addr :9090     serve /metrics (Prometheus text) and
//	                        /metrics.json while experiments run
//	-pprof                  also mount net/http/pprof on the metrics server
//	-metrics-dump text      print a metrics snapshot after each experiment
//	                        (text or json)
//	-v                      periodic progress lines on stderr during runs
//	-health-addr :9091      serve the ops plane (/healthz, /readyz, /statusz
//	                        and /metrics) with a background health sampler;
//	                        watch it live with socialtrust-top
//	-health-sample 500ms    sampler cadence (default 1s)
//	-slo-interval 2s        per-interval wall-time budget for the
//	                        interval-slo watchdog
//
// Decision audit — instead of (or before) experiments, run one audited
// simulation whose per-decision forensics trail is written to a directory
// for cmd/socialtrust-audit:
//
//	socialtrust-sim -audit out/ -audit-model MCM
//	socialtrust-audit out/
//
// The audited run uses the paper's 200-node default geometry (tunable with
// -audit-nodes and -audit-b) and honors -seed, -quick and -managers. Its
// detection-quality table is printed after the run.
//
// Robustness — the audited run can be subjected to population churn and a
// deterministic fault-injection plan at the manager mailbox boundary
// (message drops, shard crashes), reproducible by fault seed:
//
//	socialtrust-sim -audit out/ -churn -fault-drop 0.1 -fault-crash -fault-seed 7
//
// Interval tracing — the audited run can additionally record hierarchical
// wall-time spans over its update intervals for cmd/socialtrust-trace
// (pointing -trace-dir at the audit directory keeps one trail):
//
//	socialtrust-sim -audit out/ -trace-dir out/
//	socialtrust-trace out/
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"socialtrust/internal/audit"
	"socialtrust/internal/cluster"
	"socialtrust/internal/experiments"
	"socialtrust/internal/fault"
	"socialtrust/internal/obs"
	"socialtrust/internal/obs/health"
	"socialtrust/internal/sim"
)

func main() {
	cluster.WorkerMainIfChild() // -cluster re-execs this binary as a shard worker
	var (
		list    = flag.Bool("list", false, "list available experiments")
		exp     = flag.String("experiment", "", "experiment id to run (or 'all')")
		runs    = flag.Int("runs", 5, "seeded repetitions per configuration")
		seed    = flag.Uint64("seed", 1, "base random seed")
		quick   = flag.Bool("quick", false, "shortened horizon for smoke runs")
		series  = flag.Bool("series", false, "also emit per-node reputation vectors as CSV")
		mgrs     = flag.Int("managers", 0, "route ratings through a resource-manager overlay of this many shards (0 = direct ledger)")
		clusterN = flag.Int("cluster", 0, "host the audited run's manager shards in this many worker processes over the socket transport (0 = in-process; requires -managers)")
		mAddr   = flag.String("metrics-addr", "", "serve /metrics and /metrics.json on this address while running")
		mPprof  = flag.Bool("pprof", false, "mount net/http/pprof on the metrics server (requires -metrics-addr)")
		mDump   = flag.String("metrics-dump", "", "print a metrics snapshot after each experiment: text|json")
		verbose = flag.Bool("v", false, "verbose progress logging on stderr")

		healthAddr   = flag.String("health-addr", "", "serve the ops plane on this address: /healthz, /readyz, /statusz plus /metrics (watch with socialtrust-top)")
		healthSample = flag.Duration("health-sample", time.Second, "health sampler cadence (requires -health-addr)")
		sloInterval  = flag.Duration("slo-interval", 0, "per-update-interval wall-time budget judged by the interval-slo watchdog (0 = disabled; requires -health-addr)")

		auditDir   = flag.String("audit", "", "run one audited simulation and write its decision-audit trail to this directory")
		auditModel = flag.String("audit-model", "MCM", "collusion model of the audited run: none|PCM|MCM|MMM")
		auditNodes = flag.Int("audit-nodes", 200, "network size of the audited run")
		auditB     = flag.Float64("audit-b", 0.2, "colluder QoS probability of the audited run")
		traceDir   = flag.String("trace-dir", "", "trace the audited run's intervals and write the span stream to this directory (point at the -audit dir to keep one trail)")
		stateDir   = flag.String("state-dir", "", "make the audited run durable: journal every rating to a WAL and checkpoint the full run state in this directory at each interval boundary; rerunning with the same directory after a crash resumes bit-identically")

		churn      = flag.Bool("churn", false, "churn the peer population of the audited run (moderate default regime)")
		faultDrop  = flag.Float64("fault-drop", 0, "per-delivery message drop probability injected at the manager mailbox boundary")
		faultCrash = flag.Bool("fault-crash", false, "inject random manager shard crashes (5% per shard per update interval)")
		faultSeed  = flag.Uint64("fault-seed", 0, "seed of the deterministic fault plan (same seed = same injected-event sequence)")
	)
	flag.Parse()

	if *mDump != "" && *mDump != "text" && *mDump != "json" {
		fmt.Fprintf(os.Stderr, "socialtrust-sim: -metrics-dump must be text or json, got %q\n", *mDump)
		os.Exit(2)
	}
	if *mPprof && *mAddr == "" {
		fmt.Fprintln(os.Stderr, "socialtrust-sim: -pprof requires -metrics-addr")
		os.Exit(2)
	}
	if *mgrs < 0 {
		fmt.Fprintf(os.Stderr, "socialtrust-sim: -managers must be >= 0, got %d\n", *mgrs)
		os.Exit(2)
	}
	if *verbose {
		obs.SetLogLevel(slog.LevelInfo)
	}
	if *mDump != "" || *verbose {
		obs.Enable()
	}
	if *mAddr != "" {
		srv, err := obs.Serve(*mAddr, *mPprof) // Serve enables recording
		if err != nil {
			fmt.Fprintf(os.Stderr, "socialtrust-sim: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics", srv.Addr)
		if *mPprof {
			fmt.Fprintf(os.Stderr, " (pprof on /debug/pprof/)")
		}
		fmt.Fprintln(os.Stderr)
	}
	if *sloInterval < 0 || (*sloInterval > 0 && *healthAddr == "") {
		fmt.Fprintln(os.Stderr, "socialtrust-sim: -slo-interval requires -health-addr and must be >= 0")
		os.Exit(2)
	}
	if *healthAddr != "" {
		sampler := health.Start(health.Config{Interval: *healthSample, SLOInterval: *sloInterval})
		defer sampler.Stop()
		srv, err := health.Serve(*healthAddr, *mPprof, sampler) // Serve enables recording
		if err != nil {
			fmt.Fprintf(os.Stderr, "socialtrust-sim: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ops plane on http://%s/statusz (healthz, readyz, metrics)\n", srv.Addr)
	}

	faults := fault.Config{Seed: *faultSeed, Drop: *faultDrop}
	if *faultCrash {
		faults.CrashRate = 0.05
	}
	if faults.Enabled() && *auditDir == "" {
		fmt.Fprintln(os.Stderr, "socialtrust-sim: fault injection applies to the audited run; add -audit <dir>")
		os.Exit(2)
	}
	if *traceDir != "" && *auditDir == "" {
		fmt.Fprintln(os.Stderr, "socialtrust-sim: tracing applies to the audited run; add -audit <dir>")
		os.Exit(2)
	}
	if *stateDir != "" && *auditDir == "" {
		fmt.Fprintln(os.Stderr, "socialtrust-sim: durable state applies to the audited run; add -audit <dir>")
		os.Exit(2)
	}
	if *clusterN < 0 {
		fmt.Fprintf(os.Stderr, "socialtrust-sim: -cluster must be >= 0, got %d\n", *clusterN)
		os.Exit(2)
	}
	if *clusterN > 0 && *auditDir == "" {
		fmt.Fprintln(os.Stderr, "socialtrust-sim: cluster mode applies to the audited run; add -audit <dir>")
		os.Exit(2)
	}

	if *auditDir != "" {
		var churnCfg sim.ChurnConfig
		if *churn {
			churnCfg = sim.DefaultChurn()
		}
		if err := runAudited(*auditDir, *traceDir, *stateDir, *auditModel, *auditNodes, *auditB, *seed, *quick, *mgrs, *clusterN, churnCfg, faults); err != nil {
			fmt.Fprintf(os.Stderr, "socialtrust-sim: %v\n", err)
			os.Exit(1)
		}
		if *exp == "" {
			return
		}
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, s := range experiments.All() {
			fmt.Printf("  %-8s %s\n           %s\n", s.ID, s.Title, s.Description)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: socialtrust-sim -experiment <id>")
		}
		return
	}

	opts := experiments.Options{Runs: *runs, Seed: *seed, Quick: *quick, NodeSeries: *series, Managers: *mgrs}
	var ids []string
	if *exp == "all" {
		for _, s := range experiments.All() {
			ids = append(ids, s.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		if err := experiments.Run(id, opts, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "socialtrust-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		dumpMetrics(*mDump, id)
	}
}

// runAudited executes one simulation with the flight recorder on, writes
// the audit trail to dir, and prints the run's detection-quality table —
// optionally under churn, a deterministic fault-injection regime, interval
// tracing (traceDir non-empty), and durable state with crash-restart
// recovery (stateDir non-empty).
func runAudited(dir, traceDir, stateDir, model string, nodes int, b float64, seed uint64, quick bool, managers, clusterN int,
	churn sim.ChurnConfig, faults fault.Config) error {
	var m sim.CollusionModel
	switch strings.ToUpper(model) {
	case "NONE":
		m = sim.NoCollusion
	case "PCM":
		m = sim.PCM
	case "MCM":
		m = sim.MCM
	case "MMM":
		m = sim.MMM
	default:
		return fmt.Errorf("-audit-model must be none, PCM, MCM or MMM, got %q", model)
	}
	cfg := sim.DefaultConfig(m, sim.EngineEigenTrust, b, true)
	cfg.NumNodes = nodes
	if nodes != 200 {
		// Preserve the paper's population proportions at other sizes.
		cfg.NumPretrusted = nodes * 9 / 200
		cfg.NumColluders = (nodes * 30 / 200) &^ 1
		cfg.NumBoosted = cfg.NumColluders / 4
	}
	if quick {
		cfg.QueryCycles = 15
		cfg.SimulationCycles = 12
	}
	cfg.Seed = seed
	cfg.Managers = managers
	cfg.Cluster = clusterN
	if clusterN > 0 && cfg.Managers <= 0 {
		// Worker processes host manager shards; default an overlay in.
		cfg.Managers = 8
		fmt.Fprintln(os.Stderr, "-cluster requires the manager overlay; defaulting -managers to 8")
	}
	cfg.AuditDir = dir
	cfg.TraceDir = traceDir
	cfg.StateDir = stateDir
	cfg.Churn = churn
	cfg.Faults = faults
	if faults.Enabled() && cfg.Managers <= 0 {
		// Faults live at the manager mailbox boundary; default an overlay in.
		cfg.Managers = 8
		fmt.Fprintln(os.Stderr, "fault injection requires the manager overlay; defaulting -managers to 8")
	}

	start := time.Now()
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("audited %s run (%d nodes, %d colluders) in %v; trail in %s\n",
		m, cfg.NumNodes, cfg.NumColluders, time.Since(start).Round(time.Millisecond), dir)
	if churn.Enabled() {
		fmt.Printf("churn: %d departures, %d rejoins (%d whitewash)\n",
			res.Churn.Departures, res.Churn.Rejoins, res.Churn.WhitewashRejoins)
	}
	if faults.Enabled() {
		fmt.Printf("faults: %d ratings lost, %d partial drains, %d replica-recovered shard intervals\n",
			res.RatingsLost, res.PartialDrains, res.ReplicaDrains)
	}
	if traceDir != "" {
		fmt.Printf("interval trace in %s (inspect with socialtrust-trace)\n", traceDir)
	}
	gt, events, err := audit.LoadDir(dir)
	if err != nil {
		return err
	}
	if err := audit.Score(gt, events).WriteTable(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// dumpMetrics prints the obs snapshot after one experiment in the requested
// format (no-op for an empty format).
func dumpMetrics(format, id string) {
	if format == "" {
		return
	}
	obs.CaptureRuntime()
	fmt.Printf("-- metrics after %s --\n", id)
	var err error
	switch format {
	case "json":
		err = obs.WriteJSON(os.Stdout)
	default:
		err = obs.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "socialtrust-sim: metrics dump: %v\n", err)
	}
	fmt.Println()
}
