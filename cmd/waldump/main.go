// waldump prints every record in a rating WAL, one line per record — the
// low-level inspection tool for debugging durability and recovery: pair two
// dumps with sort/diff to find resurrected or missing records, or grep for a
// sequence number to see every incarnation that journaled it.
//
//	waldump [-summary] <file.wal>
package main

import (
	"flag"
	"fmt"
	"os"

	"socialtrust/internal/persist"
)

func kindName(k byte, flags byte) string {
	switch k {
	case persist.KindRating:
		return "rating"
	case persist.KindMark:
		return "mark"
	case persist.KindFatedRating:
		s := "fated"
		if flags&persist.FateDeferred != 0 {
			s += "+deferred"
		}
		if flags&persist.FateReplica != 0 {
			s += "+replica"
		}
		return s
	default:
		return fmt.Sprintf("kind%d", k)
	}
}

func main() {
	summary := flag.Bool("summary", false, "print per-kind counts and seq ranges instead of records")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: waldump [-summary] <file.wal>")
		os.Exit(2)
	}
	w, recs, err := persist.Open(flag.Arg(0), persist.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer w.Close()
	if *summary {
		counts := map[string]int{}
		var minSeq, maxSeq uint64
		var lastMark uint64
		for _, r := range recs.Records {
			counts[kindName(r.Kind, r.Flags)]++
			if r.Kind == persist.KindMark {
				lastMark = r.Seq
				continue
			}
			if minSeq == 0 || r.Seq < minSeq {
				minSeq = r.Seq
			}
			if r.Seq > maxSeq {
				maxSeq = r.Seq
			}
		}
		fmt.Printf("records=%d seq=[%d,%d] last-mark=%d\n", len(recs.Records), minSeq, maxSeq, lastMark)
		for k, n := range counts {
			fmt.Printf("  %-16s %d\n", k, n)
		}
		return
	}
	for _, r := range recs.Records {
		if r.Kind == persist.KindMark {
			fmt.Printf("mark interval=%d\n", r.Seq)
			continue
		}
		fmt.Printf("%-16s seq=%d rater=%d ratee=%d cycle=%d cat=%d val=%g\n",
			kindName(r.Kind, r.Flags), r.Seq, r.Rater, r.Ratee, r.Cycle, r.Category, r.Value)
	}
}
