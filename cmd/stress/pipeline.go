package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"socialtrust/internal/audit"
	"socialtrust/internal/cluster"
	"socialtrust/internal/core"
	"socialtrust/internal/interest"
	"socialtrust/internal/manager"
	"socialtrust/internal/obs/span"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/eigentrust"
	"socialtrust/internal/socialgraph"
	"socialtrust/internal/xrand"
)

// The -nodes pipeline sweep: the BenchmarkPipeline deployment shape,
// reproducible without go test. One interval is a batched overlay ingest of a
// whole trace followed by the drain/adjust/iterate pass; ingest and
// adjust+iterate are timed separately so the two halves of the scale story
// (SubmitBatch throughput, parallel Adjust/EigenTrust wall time) each get a
// column.
const (
	sweepShards    = 16 // manager goroutines fronting the engine
	sweepDegree    = 6  // random social edges grown per node
	sweepRPN       = 4  // ratings per node per interval
	sweepCats      = 16 // interest category universe
	sweepPretrust  = 20
	sweepBatchSize = 8192 // ratings per SubmitBatch call
)

// buildSweepPipeline wires the full stack at size n: a social graph with
// sweepDegree random edges per node, interest profiles over a small category
// universe, a SocialTrust-wrapped EigenTrust engine, and a manager overlay
// sharded sweepShards ways. Closeness paths are capped at 3 hops — the
// paper's observed transaction radius — which keeps the Ωc BFS bounded at
// 50k nodes.
func buildSweepPipeline(n int, seed uint64, stateDir string, pc *cluster.ProcCluster) (*manager.Overlay, *xrand.Stream, error) {
	rng := xrand.New(seed + uint64(n))
	g := socialgraph.New(n)
	for i := 0; i < n; i++ {
		for d := 0; d < sweepDegree; d++ {
			j := rng.Intn(n)
			if j != i {
				g.AddRelationship(socialgraph.NodeID(i), socialgraph.NodeID(j),
					socialgraph.Relationship{Kind: socialgraph.Friendship})
			}
		}
	}
	sets := make([]interest.Set, n)
	for i := range sets {
		cats := make([]interest.Category, 4)
		for c := range cats {
			cats[c] = interest.Category(rng.Intn(sweepCats))
		}
		sets[i] = interest.NewSet(cats...)
	}
	pretrusted := make([]int, sweepPretrust)
	for i := range pretrusted {
		pretrusted[i] = i
	}
	inner := eigentrust.New(eigentrust.Config{NumNodes: n, Pretrusted: pretrusted})
	fc := core.Config{NumNodes: n}
	fc.Closeness.MaxPathHops = 3
	filter := core.New(fc, g, sets, interest.NewTracker(n), inner)
	opts := manager.Options{StateDir: stateDir}
	if pc != nil {
		opts.Transport = pc.Client()
	}
	o, err := manager.NewWithOptions(n, sweepShards, filter, opts)
	return o, rng, err
}

// sweepTrace draws one interval's worth of ratings: sweepRPN per active
// rater, random ratees, 20% negative, sequence-numbered from *seq (the WAL
// replay dedupe key of durable overlays). sparse < 1 confines the raters to
// the first n·sparse nodes — the sparse-activity regime the incremental
// engine is built for, where interval cost should track the active set,
// not n.
func sweepTrace(n int, rng *xrand.Stream, sparse float64, seq *uint64) []rating.Rating {
	raters := n
	if sparse > 0 && sparse < 1 {
		raters = int(float64(n) * sparse)
		if raters < 1 {
			raters = 1
		}
	}
	trace := make([]rating.Rating, 0, raters*sweepRPN)
	for i := 0; i < raters*sweepRPN; i++ {
		rater := rng.Intn(raters)
		ratee := rng.Intn(n)
		if ratee == rater {
			ratee = (ratee + 1) % n
		}
		v := 1.0
		if rng.Float64() < 0.2 {
			v = -1
		}
		*seq++
		trace = append(trace, rating.Rating{
			Rater: rater, Ratee: ratee, Value: v,
			Cycle: i / n, Category: rng.Intn(sweepCats), Seq: *seq,
		})
	}
	return trace
}

// sweepIngest pushes one interval's trace through SubmitBatch, optionally
// from several concurrent submitter goroutines — the knob that fills a
// cluster transport's pipeline with more than one batch in flight per shard.
// Batches are dealt round-robin so every submitter touches every shard.
func sweepIngest(o *manager.Overlay, trace []rating.Rating, submitters int) error {
	var batches [][]rating.Rating
	for lo := 0; lo < len(trace); lo += sweepBatchSize {
		hi := lo + sweepBatchSize
		if hi > len(trace) {
			hi = len(trace)
		}
		batches = append(batches, trace[lo:hi])
	}
	if submitters <= 1 {
		for _, b := range batches {
			if errs := o.SubmitBatch(b); errs != nil {
				for _, err := range errs {
					if err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(batches); i += submitters {
				if errs := o.SubmitBatch(batches[i]); errs != nil {
					for _, err := range errs {
						if err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// runPipelineSweep measures the raw interval pipeline at each size: batched
// ingest throughput (ratings/sec through SubmitBatch) and the adjust+iterate
// wall time of the EndInterval drain, per interval. With traced set, each
// interval runs under a root span (mirroring the simulator's interval
// instrumentation) and its phase attribution is printed beneath the row;
// traceDir additionally exports the span stream for socialtrust-trace.
func runPipelineSweep(sizes []int, intervals int, seed uint64, traceDir string, traced bool, sparse float64, stateDir string,
	clusterN, submitters, workerHealthBase int) {
	if traced {
		span.Enable(0)
		defer span.Disable()
	}
	fmt.Printf("%-8s %-9s %-12s %-14s %-16s\n",
		"nodes", "interval", "ingest", "ratings/s", "adjust+iterate")
	for _, n := range sizes {
		dir := ""
		if stateDir != "" {
			dir = filepath.Join(stateDir, fmt.Sprintf("n%d", n))
		}
		// Cluster mode spawns a fresh worker fleet per size so the per-process
		// peak-RSS figures in the cluster-summary line belong to that size
		// alone, not to the largest size the sweep has touched so far.
		var pc *cluster.ProcCluster
		if clusterN > 0 {
			wdir, err := os.MkdirTemp("", "stsweep")
			if err != nil {
				fmt.Printf("stress: n=%d: %v\n", n, err)
				return
			}
			pc, err = cluster.Spawn(cluster.SpawnOptions{
				Workers:    clusterN,
				Shards:     sweepShards,
				StateDir:   wdir,
				HealthBase: workerHealthBase,
			})
			if err != nil {
				_ = os.RemoveAll(wdir)
				fmt.Printf("stress: n=%d: %v\n", n, err)
				return
			}
			defer os.RemoveAll(wdir)
		}
		o, rng, err := buildSweepPipeline(n, seed, dir, pc)
		if err != nil {
			if pc != nil {
				_ = pc.Close()
			}
			fmt.Printf("stress: n=%d: %v\n", n, err)
			return
		}
		wireSent0, wireRecv0 := cluster.WireStats()
		var (
			seq           uint64
			totalRatings  int
			totalIngest   time.Duration
			totalInterval time.Duration
		)
		for iv := 0; iv < intervals; iv++ {
			trace := sweepTrace(n, rng, sparse, &seq)
			root := span.Root("sweep.interval")
			root.SetInt("interval", int64(iv+1)).SetInt("nodes", int64(n))
			prev := span.SetAmbient(root.Context())
			isp := span.Ambient("sweep.ingest", span.PhaseIngest).SetInt("ratings", int64(len(trace)))
			prevIngest := span.SetAmbient(isp.Context())
			start := time.Now()
			if err := sweepIngest(o, trace, submitters); err != nil {
				fmt.Printf("stress: n=%d: %v\n", n, err)
				if pc != nil {
					_ = pc.Close()
				}
				return
			}
			ingest := time.Since(start)
			span.SetAmbient(prevIngest)
			isp.End()
			start = time.Now()
			o.EndInterval()
			drain := time.Since(start)
			span.SetAmbient(prev)
			root.End()
			totalRatings += len(trace)
			totalIngest += ingest
			totalInterval += ingest + drain
			fmt.Printf("%-8d %-9d %-12v %-14.0f %-16v\n",
				n, iv+1, ingest.Round(time.Microsecond),
				float64(len(trace))/ingest.Seconds(), drain.Round(time.Millisecond))
			if att, ok := span.Current().TakeAttribution(root.TraceID()); ok {
				fmt.Printf("         phases: ingest=%.4fs drain=%.4fs adjust=%.4fs iterate=%.4fs other=%.4fs coverage=%.1f%%\n",
					att.Ingest, att.Drain, att.Adjust, att.Iterate, att.Other(), 100*att.Coverage())
			}
		}
		o.Close()
		if pc != nil {
			// One machine-parseable line per size for scripts/bench.sh
			// (BENCH_cluster.json). Wire bytes are the coordinator's counters
			// over the measured intervals; RSS figures are kernel VmHWM peaks.
			wireSent, wireRecv := cluster.WireStats()
			wireBytes := float64(wireSent - wireSent0 + wireRecv - wireRecv0)
			fmt.Printf("cluster-summary nodes=%d procs=%d ratings=%d ratings_per_s=%.0f s_per_interval=%.4f coordinator_peak_rss_mb=%.1f worker_peak_rss_mb_max=%.1f wire_bytes_per_rating=%.1f\n",
				n, clusterN, totalRatings,
				float64(totalRatings)/totalIngest.Seconds(),
				totalInterval.Seconds()/float64(intervals),
				cluster.SelfPeakRSSMB(), pc.WorkerPeakRSSMB(), wireBytes/float64(totalRatings))
			if err := pc.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "stress: cluster teardown: %v\n", err)
			}
		}
	}
	if traced && traceDir != "" {
		rec := span.Current()
		spans := rec.Drain()
		if d := rec.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "stress: span ring overflowed; %d spans dropped from the export\n", d)
		}
		if err := audit.WriteTrace(traceDir, spans); err != nil {
			fmt.Fprintf(os.Stderr, "stress: %v\n", err)
			return
		}
		fmt.Printf("interval trace in %s (inspect with socialtrust-trace)\n", traceDir)
	}
}
