// Command stress exercises the simulator and the SocialTrust filter at
// network sizes beyond the paper's 200 nodes, reporting wall time,
// throughput, resource usage and whether collusion suppression holds as the
// population scales (the paper's "we also conducted experiments with
// different numbers of nodes and colluders; the relative performance
// differences remain").
//
//	stress                       # sweep 200, 400, 800 nodes
//	stress -sizes 200,1600 -cycles 10
//	stress -managers 8           # route ratings through the manager overlay
//	stress -metrics-addr :9090 -pprof   # live metrics + profiling
//	stress -health-addr :9091 -slo-interval 2s   # ops plane: probes + watchdogs
//	stress -audit out/           # decision-audit trail per size in out/n<size>
//	stress -churn -managers 8 -fault-drop 0.1 -fault-crash   # chaos sweep
//	stress -nodes scale          # pipeline sweep at the 2k/10k/50k presets
//	stress -nodes 2k,10k -intervals 5   # custom pipeline sweep
//	stress -nodes 50k -trace     # pipeline sweep with per-interval phase attribution
//	stress -nodes 50k -trace-dir out/   # also export the span stream for socialtrust-trace
//	stress -nodes 50k -sparse 0.01      # sparse-activity sweep: 1% of nodes rate per interval
//
// The -nodes mode bypasses the simulator and measures the raw interval
// pipeline — batched overlay ingest, drain, SocialTrust adjust, EigenTrust
// iteration — reporting ratings/sec ingest throughput and adjust+iterate
// wall time per interval: the BenchmarkPipeline numbers, reproducible
// without go test. Sizes take a k suffix (2k = 2000) in both -nodes and
// -sizes; "-nodes scale" expands to the 2k,10k,50k preset.
//
// Each size row includes the peak goroutine count and the bytes allocated
// during the run, sampled through the obs runtime gauges, so the scaling
// sweep doubles as a resource report.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"socialtrust"
	"socialtrust/internal/cluster"
	"socialtrust/internal/obs"
	"socialtrust/internal/obs/health"
)

func main() {
	cluster.WorkerMainIfChild() // -cluster re-execs this binary as a shard worker
	var (
		sizes    = flag.String("sizes", "200,400,800", "comma-separated network sizes")
		cycles   = flag.Int("cycles", 12, "simulation cycles per run")
		qc       = flag.Int("qc", 15, "query cycles per simulation cycle")
		b        = flag.Float64("b", 0.6, "colluder QoS probability")
		seed     = flag.Uint64("seed", 1, "random seed")
		managers = flag.Int("managers", 0, "route ratings through a resource-manager overlay of this many shards (0 = direct ledger)")
		mAddr    = flag.String("metrics-addr", "", "serve /metrics and /metrics.json on this address while running")
		mPprof   = flag.Bool("pprof", false, "mount net/http/pprof on the metrics server (requires -metrics-addr)")
		mDump    = flag.String("metrics-dump", "", "print a metrics snapshot after the sweep: text|json")
		auditDir = flag.String("audit", "", "write each size's decision-audit trail to <dir>/n<size>")
		stateDir = flag.String("state-dir", "", "durable runs: journal ratings to per-shard WALs and checkpoint run state under <dir>/n<size> (sim sweep resumes bit-identically after a crash; -nodes mode prices WAL-on ingest)")
		verbose  = flag.Bool("v", false, "verbose progress logging on stderr")

		healthAddr   = flag.String("health-addr", "", "serve the ops plane on this address: /healthz, /readyz, /statusz plus /metrics (watch with socialtrust-top)")
		healthSample = flag.Duration("health-sample", time.Second, "health sampler cadence (requires -health-addr)")
		sloInterval  = flag.Duration("slo-interval", 0, "per-update-interval wall-time budget judged by the interval-slo watchdog (0 = disabled; requires -health-addr)")

		nodes     = flag.String("nodes", "", "pipeline-sweep sizes (k suffix ok, e.g. 2k,10k,50k; \"scale\" = that preset); bypasses the simulator")
		intervals = flag.Int("intervals", 3, "update intervals per pipeline-sweep size (-nodes mode)")
		trace     = flag.Bool("trace", false, "trace the pipeline sweep's intervals and print per-interval phase attribution (-nodes mode)")
		traceDir  = flag.String("trace-dir", "", "write the pipeline sweep's span stream to this directory (implies -trace)")
		sparse    = flag.Float64("sparse", 0, "fraction of nodes active as raters per pipeline-sweep interval (0 or 1 = all; -nodes mode)")

		clusterN   = flag.Int("cluster", 0, "host the pipeline sweep's manager shards in this many worker processes over the socket transport (0 = in-process; -nodes mode)")
		submitters = flag.Int("submitters", 1, "concurrent ingest goroutines per pipeline-sweep interval (>1 exploits the cluster transport's pipelining; -nodes mode)")
		workerHP   = flag.Int("worker-health-base", 0, "serve each cluster worker's ops plane on 127.0.0.1:(base+i) (requires -cluster)")

		churn      = flag.Bool("churn", false, "churn the peer population of every run (moderate default regime)")
		faultDrop  = flag.Float64("fault-drop", 0, "per-delivery message drop probability at the manager mailbox boundary")
		faultCrash = flag.Bool("fault-crash", false, "inject random manager shard crashes (5% per shard per update interval)")
		faultSeed  = flag.Uint64("fault-seed", 0, "seed of the deterministic fault plan")
	)
	flag.Parse()

	if *mDump != "" && *mDump != "text" && *mDump != "json" {
		fmt.Fprintln(os.Stderr, "stress: -metrics-dump must be text or json")
		os.Exit(2)
	}
	if *mPprof && *mAddr == "" {
		fmt.Fprintln(os.Stderr, "stress: -pprof requires -metrics-addr")
		os.Exit(2)
	}
	if *managers < 0 {
		fmt.Fprintf(os.Stderr, "stress: -managers must be >= 0, got %d\n", *managers)
		os.Exit(2)
	}
	faults := socialtrust.FaultConfig{Seed: *faultSeed, Drop: *faultDrop}
	if *faultCrash {
		faults.CrashRate = 0.05
	}
	if faults.Enabled() && *managers <= 0 {
		// Faults live at the manager mailbox boundary; default an overlay in.
		*managers = 8
		fmt.Fprintln(os.Stderr, "fault injection requires the manager overlay; defaulting -managers to 8")
	}
	if *verbose {
		obs.SetLogLevel(slog.LevelInfo)
	}
	// stress is a measurement tool: metrics are always on.
	obs.Enable()
	if *mAddr != "" {
		srv, err := obs.Serve(*mAddr, *mPprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stress: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics\n", srv.Addr)
	}
	if *sloInterval < 0 || (*sloInterval > 0 && *healthAddr == "") {
		fmt.Fprintln(os.Stderr, "stress: -slo-interval requires -health-addr and must be >= 0")
		os.Exit(2)
	}
	if *healthAddr != "" {
		sampler := health.Start(health.Config{Interval: *healthSample, SLOInterval: *sloInterval})
		defer sampler.Stop()
		srv, err := health.Serve(*healthAddr, *mPprof, sampler)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stress: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ops plane on http://%s/statusz (healthz, readyz, metrics)\n", srv.Addr)
	}

	// Background sampler feeding the runtime_* gauges (peaks included)
	// while runs execute.
	stopSampler := make(chan struct{})
	defer close(stopSampler)
	go func() {
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				obs.CaptureRuntime()
			}
		}
	}()

	if (*trace || *traceDir != "") && *nodes == "" {
		fmt.Fprintln(os.Stderr, "stress: tracing applies to the pipeline sweep; add -nodes")
		os.Exit(2)
	}
	if *clusterN < 0 || *submitters < 1 {
		fmt.Fprintln(os.Stderr, "stress: -cluster must be >= 0 and -submitters >= 1")
		os.Exit(2)
	}
	if (*clusterN > 0 || *workerHP != 0) && *nodes == "" {
		fmt.Fprintln(os.Stderr, "stress: cluster mode applies to the pipeline sweep; add -nodes")
		os.Exit(2)
	}
	if *workerHP != 0 && *clusterN <= 0 {
		fmt.Fprintln(os.Stderr, "stress: -worker-health-base requires -cluster")
		os.Exit(2)
	}
	if *nodes != "" {
		sweep := *nodes
		if sweep == "scale" {
			sweep = "2k,10k,50k"
		}
		var ns []int
		for _, tok := range strings.Split(sweep, ",") {
			n, err := parseSize(tok)
			if err != nil || n < 50 {
				fmt.Fprintf(os.Stderr, "stress: bad size %q\n", tok)
				os.Exit(1)
			}
			ns = append(ns, n)
		}
		runPipelineSweep(ns, *intervals, *seed, *traceDir, *trace || *traceDir != "", *sparse, *stateDir,
			*clusterN, *submitters, *workerHP)
		return
	}

	fmt.Printf("%-8s %-10s %-12s %-14s %-12s %-8s %-10s %-10s\n",
		"nodes", "colluders", "wall", "requests/s", "coll/norm", "share", "peak-gor", "alloc")
	for _, tok := range strings.Split(*sizes, ",") {
		n, err := parseSize(tok)
		if err != nil || n < 50 {
			fmt.Fprintf(os.Stderr, "stress: bad size %q\n", tok)
			os.Exit(1)
		}
		cfg := socialtrust.DefaultSimConfig(socialtrust.PCM, socialtrust.EngineEigenTrust, *b, true)
		cfg.NumNodes = n
		// Scale the populations with the network, preserving the paper's
		// 4.5% pretrusted / 15% colluder proportions (colluders even for
		// PCM pairing).
		cfg.NumPretrusted = n * 9 / 200
		cfg.NumColluders = (n * 30 / 200) &^ 1
		cfg.NumBoosted = cfg.NumColluders / 4
		cfg.SimulationCycles = *cycles
		cfg.QueryCycles = *qc
		cfg.Seed = *seed
		cfg.Managers = *managers
		if *churn {
			cfg.Churn = socialtrust.DefaultChurn()
		}
		cfg.Faults = faults
		if *auditDir != "" {
			cfg.AuditDir = filepath.Join(*auditDir, fmt.Sprintf("n%d", n))
		}
		if *stateDir != "" {
			cfg.StateDir = filepath.Join(*stateDir, fmt.Sprintf("n%d", n))
		}

		obs.ResetRuntimePeaks()
		before := obs.CaptureRuntime()
		start := time.Now()
		res, err := socialtrust.RunSim(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stress: %v\n", err)
			os.Exit(1)
		}
		wall := time.Since(start)
		obs.CaptureRuntime()
		snap := obs.ReadSnapshot()
		peakGor := int(snap.Gauges["runtime_goroutines_peak"])
		allocBytes := snap.Gauges["runtime_total_alloc_bytes"] - float64(before.TotalAlloc)

		coll, norm := 0.0, 0.0
		nColl, nNorm := 0, 0
		for id, v := range res.FinalReputations {
			switch cfg.Type(id) {
			case socialtrust.Colluder:
				coll += v
				nColl++
			case socialtrust.Normal:
				norm += v
				nNorm++
			}
		}
		ratio := 0.0
		if nColl > 0 && nNorm > 0 && norm > 0 {
			ratio = (coll / float64(nColl)) / (norm / float64(nNorm))
		}
		fmt.Printf("%-8d %-10d %-12v %-14.0f %-12.2f %-8s %-10d %-10s\n",
			n, cfg.NumColluders, wall.Round(time.Millisecond),
			float64(res.TotalRequests)/wall.Seconds(),
			ratio, fmt.Sprintf("%.1f%%", res.ColluderRequestShare()*100),
			peakGor, fmtBytes(allocBytes))
		if *churn || faults.Enabled() {
			fmt.Printf("         churn %d out / %d in (%d whitewash); %d ratings lost, %d partial drains, %d replica-recovered\n",
				res.Churn.Departures, res.Churn.Rejoins, res.Churn.WhitewashRejoins,
				res.RatingsLost, res.PartialDrains, res.ReplicaDrains)
		}
	}
	if *mDump != "" {
		obs.CaptureRuntime()
		var err error
		if *mDump == "json" {
			err = obs.WriteJSON(os.Stdout)
		} else {
			err = obs.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "stress: metrics dump: %v\n", err)
		}
	}
}

// parseSize parses a network size, accepting a k suffix (2k = 2000).
func parseSize(tok string) (int, error) {
	tok = strings.TrimSpace(tok)
	mult := 1
	if t := strings.TrimSuffix(tok, "k"); t != tok {
		tok, mult = t, 1000
	}
	n, err := strconv.Atoi(tok)
	return n * mult, err
}

// fmtBytes renders a byte count human-readably (base 1024).
func fmtBytes(b float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB"}
	i := 0
	for b >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	return fmt.Sprintf("%.1f%s", b, units[i])
}
