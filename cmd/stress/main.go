// Command stress exercises the simulator and the SocialTrust filter at
// network sizes beyond the paper's 200 nodes, reporting wall time,
// throughput, and whether collusion suppression holds as the population
// scales (the paper's "we also conducted experiments with different numbers
// of nodes and colluders; the relative performance differences remain").
//
//	stress                       # sweep 200, 400, 800 nodes
//	stress -sizes 200,1600 -cycles 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"socialtrust"
)

func main() {
	var (
		sizes  = flag.String("sizes", "200,400,800", "comma-separated network sizes")
		cycles = flag.Int("cycles", 12, "simulation cycles per run")
		qc     = flag.Int("qc", 15, "query cycles per simulation cycle")
		b      = flag.Float64("b", 0.6, "colluder QoS probability")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	fmt.Printf("%-8s %-10s %-12s %-14s %-12s %-12s\n",
		"nodes", "colluders", "wall", "requests/s", "coll/norm", "share")
	for _, tok := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 50 {
			fmt.Fprintf(os.Stderr, "stress: bad size %q\n", tok)
			os.Exit(1)
		}
		cfg := socialtrust.DefaultSimConfig(socialtrust.PCM, socialtrust.EngineEigenTrust, *b, true)
		cfg.NumNodes = n
		// Scale the populations with the network, preserving the paper's
		// 4.5% pretrusted / 15% colluder proportions (colluders even for
		// PCM pairing).
		cfg.NumPretrusted = n * 9 / 200
		cfg.NumColluders = (n * 30 / 200) &^ 1
		cfg.NumBoosted = cfg.NumColluders / 4
		cfg.SimulationCycles = *cycles
		cfg.QueryCycles = *qc
		cfg.Seed = *seed

		start := time.Now()
		res, err := socialtrust.RunSim(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stress: %v\n", err)
			os.Exit(1)
		}
		wall := time.Since(start)

		coll, norm := 0.0, 0.0
		nColl, nNorm := 0, 0
		for id, v := range res.FinalReputations {
			switch cfg.Type(id) {
			case socialtrust.Colluder:
				coll += v
				nColl++
			case socialtrust.Normal:
				norm += v
				nNorm++
			}
		}
		ratio := 0.0
		if nColl > 0 && nNorm > 0 && norm > 0 {
			ratio = (coll / float64(nColl)) / (norm / float64(nNorm))
		}
		fmt.Printf("%-8d %-10d %-12v %-14.0f %-12.2f %-12s\n",
			n, cfg.NumColluders, wall.Round(time.Millisecond),
			float64(res.TotalRequests)/wall.Seconds(),
			ratio, fmt.Sprintf("%.1f%%", res.ColluderRequestShare()*100))
	}
}
