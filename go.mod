module socialtrust

go 1.22
