// Bit-identity of the multi-process shard cluster: a simulation whose
// manager shards live in worker processes (SimConfig.Cluster) must produce
// exactly the results of the single-process run — reputations, request
// accounting, churn and fault tallies — across every collusion model, with
// faults and churn enabled. Shard placement is an operational choice, never
// an experimental variable.
package socialtrust_test

import (
	"os"
	"testing"

	"socialtrust"
	"socialtrust/internal/cluster"
)

// TestMain hosts the worker side of cluster runs: SimConfig.Cluster re-execs
// this test binary as shard daemons, and WorkerMainIfChild diverts those
// children before the test framework sees them.
func TestMain(m *testing.M) {
	cluster.WorkerMainIfChild()
	os.Exit(m.Run())
}

func clusterIdentityConfig(model socialtrust.CollusionModel) socialtrust.SimConfig {
	cfg := socialtrust.DefaultSimConfig(model, socialtrust.EngineEigenTrust, 0.4, true)
	cfg.NumNodes = 60
	cfg.NumPretrusted = 3
	cfg.NumColluders = 10
	cfg.NumBoosted = 3
	cfg.QueryCycles = 4
	cfg.SimulationCycles = 3
	cfg.Seed = 42
	cfg.Managers = 4
	cfg.Churn = socialtrust.DefaultChurn()
	cfg.Faults = socialtrust.FaultConfig{Seed: 7, Drop: 0.1, CrashRate: 0.3}
	return cfg
}

func TestClusterSimBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	for _, model := range []socialtrust.CollusionModel{socialtrust.PCM, socialtrust.MCM, socialtrust.MMM} {
		t.Run(model.String(), func(t *testing.T) {
			inproc, err := socialtrust.RunSim(clusterIdentityConfig(model))
			if err != nil {
				t.Fatal(err)
			}
			ccfg := clusterIdentityConfig(model)
			ccfg.Cluster = 2
			clustered, err := socialtrust.RunSim(ccfg)
			if err != nil {
				t.Fatal(err)
			}

			if len(clustered.FinalReputations) != len(inproc.FinalReputations) {
				t.Fatalf("reputation vector length %d != %d", len(clustered.FinalReputations), len(inproc.FinalReputations))
			}
			for i := range inproc.FinalReputations {
				if clustered.FinalReputations[i] != inproc.FinalReputations[i] {
					t.Fatalf("reputation[%d]: cluster %v != in-process %v (bit-identity broken)",
						i, clustered.FinalReputations[i], inproc.FinalReputations[i])
				}
			}
			if len(clustered.History) != len(inproc.History) {
				t.Fatalf("history length %d != %d", len(clustered.History), len(inproc.History))
			}
			for c := range inproc.History {
				for i := range inproc.History[c] {
					if clustered.History[c][i] != inproc.History[c][i] {
						t.Fatalf("cycle %d reputation[%d] diverged", c, i)
					}
				}
			}
			if clustered.TotalRequests != inproc.TotalRequests ||
				clustered.RequestsToColluders != inproc.RequestsToColluders ||
				clustered.AuthenticServed != inproc.AuthenticServed ||
				clustered.InauthenticServed != inproc.InauthenticServed {
				t.Fatalf("request accounting diverged: cluster %+v in-process %+v", clustered, inproc)
			}
			if clustered.Churn != inproc.Churn {
				t.Fatalf("churn stats diverged: %+v != %+v", clustered.Churn, inproc.Churn)
			}
			if clustered.RatingsLost != inproc.RatingsLost ||
				clustered.PartialDrains != inproc.PartialDrains ||
				clustered.ReplicaDrains != inproc.ReplicaDrains {
				t.Fatalf("fault accounting diverged: lost %d/%d partial %d/%d replica %d/%d",
					clustered.RatingsLost, inproc.RatingsLost,
					clustered.PartialDrains, inproc.PartialDrains,
					clustered.ReplicaDrains, inproc.ReplicaDrains)
			}
			if clustered.Whitewashes != inproc.Whitewashes {
				t.Fatalf("whitewash count diverged: %d != %d", clustered.Whitewashes, inproc.Whitewashes)
			}
		})
	}
}

// TestClusterConfigValidation pins the Cluster knob's contract: it requires
// explicit manager sharding and excludes single-process run-state snapshots.
func TestClusterConfigValidation(t *testing.T) {
	cfg := socialtrust.DefaultSimConfig(socialtrust.MCM, socialtrust.EngineEigenTrust, 0.4, true)
	cfg.NumNodes = 30
	cfg.Cluster = 2
	if _, err := socialtrust.RunSim(cfg); err == nil {
		t.Error("Cluster without Managers should be rejected")
	}
	cfg.Managers = 4
	cfg.StateDir = t.TempDir()
	if _, err := socialtrust.RunSim(cfg); err == nil {
		t.Error("Cluster with StateDir should be rejected")
	}
	cfg.StateDir = ""
	cfg.Cluster = -1
	if _, err := socialtrust.RunSim(cfg); err == nil {
		t.Error("negative Cluster should be rejected")
	}
}
