package socialtrust_test

import (
	"fmt"

	"socialtrust"
)

// ExampleNewFilter shows the minimal SocialTrust deployment: a social
// graph, interest profiles, a ledger, and an engine wrapped by the filter.
func ExampleNewFilter() {
	const n = 4
	g := socialtrust.NewGraph(n)
	g.AddRelationship(0, 1, socialtrust.Relationship{Kind: socialtrust.Friendship})
	sets := []socialtrust.InterestSet{
		socialtrust.NewInterestSet(1, 2),
		socialtrust.NewInterestSet(1, 2),
		socialtrust.NewInterestSet(3),
		socialtrust.NewInterestSet(4),
	}
	ledger := socialtrust.NewLedger(n)
	filter := socialtrust.NewFilter(socialtrust.FilterConfig{NumNodes: n},
		g, sets, socialtrust.NewTracker(n), socialtrust.NewEBayEngine(n))

	_ = ledger.Add(socialtrust.Rating{Rater: 0, Ratee: 1, Value: 1})
	g.RecordInteraction(0, 1, 1)
	filter.Update(ledger.EndInterval())

	fmt.Printf("%s: node 1 reputation %.2f\n", filter.Name(), filter.Reputation(1))
	// Output: eBay+SocialTrust: node 1 reputation 1.00
}

// ExampleSimilarity computes the paper's interest-similarity coefficient.
func ExampleSimilarity() {
	a := socialtrust.NewInterestSet(1, 2, 3, 4)
	b := socialtrust.NewInterestSet(3, 4)
	fmt.Println(socialtrust.Similarity(a, b))
	// Output: 1
}

// ExampleRunSim runs a scaled-down collusion experiment end to end.
func ExampleRunSim() {
	cfg := socialtrust.DefaultSimConfig(socialtrust.PCM, socialtrust.EngineEBay, 0.6, true)
	cfg.NumNodes = 60
	cfg.NumPretrusted = 3
	cfg.NumColluders = 10
	cfg.QueryCycles = 5
	cfg.SimulationCycles = 3
	res, err := socialtrust.RunSim(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.TotalRequests > 0)
	// Output: true
}
