// Marketplace: an Overstock-like auction community. The example first
// regenerates the paper's Section 3 trace insights (what honest buying and
// rating behavior looks like when a social network is woven into a market),
// then stages the B4 attack those insights expose: a seller bad-mouthing a
// direct competitor — same product categories, flood of negative ratings —
// and shows SocialTrust neutralizing the campaign.
//
//	go run ./examples/marketplace
package main

import (
	"fmt"

	"socialtrust"
)

func main() {
	// Part 1: what honest market behavior looks like (Section 3).
	cfg := socialtrust.DefaultTraceConfig()
	cfg.NumUsers = 1000
	cfg.Months = 12
	cfg.TransactionsPerMonth = 1000
	ds, err := socialtrust.GenerateTrace(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("marketplace trace: %d users, %d transactions\n", len(ds.Users), len(ds.Transactions))
	biz := ds.BusinessNetworkVsReputation()
	per := ds.PersonalNetworkVsReputation()
	fmt.Printf("reputation tracks business-network size (C=%.2f) but not friend count (C=%.2f)\n",
		biz.C, per.C)
	fmt.Printf("%.0f%% of trades happen between users sharing >30%% of their interests\n",
		100*ds.ShareAboveSimilarity(0.3))
	fmt.Println("=> honest raters are interest-similar and moderate-frequency; deviations are suspicious")
	fmt.Println()

	// Part 2: the B4 bad-mouthing attack on a marketplace reputation board.
	const n = 20
	g := socialtrust.NewGraph(n)
	sets := make([]socialtrust.InterestSet, n)
	for i := 0; i < n; i++ {
		// A ring of sellers; 0 and 1 sell in identical categories — direct
		// competitors. Everyone else overlaps loosely.
		g.AddRelationship(socialtrust.NodeID(i), socialtrust.NodeID((i+1)%n),
			socialtrust.Relationship{Kind: socialtrust.Colleague})
		if i < 2 {
			sets[i] = socialtrust.NewInterestSet(1, 2, 3)
		} else {
			sets[i] = socialtrust.NewInterestSet(1, socialtrust.Category(4+i%5))
		}
	}
	ledger := socialtrust.NewLedger(n)
	tracker := socialtrust.NewTracker(n)

	for _, protect := range []bool{false, true} {
		var engine socialtrust.Engine = socialtrust.NewEBayEngine(n)
		if protect {
			engine = socialtrust.NewFilter(socialtrust.FilterConfig{NumNodes: n}, g, sets, tracker, engine)
		}
		for month := 0; month < 6; month++ {
			// A handful of honest buyers rate seller 1 well each month;
			// the rest of the market trades elsewhere.
			for buyer := 2; buyer < n; buyer++ {
				if buyer < 7 {
					ledger.Add(socialtrust.Rating{Rater: buyer, Ratee: 1, Value: 1}) //nolint:errcheck
					g.RecordInteraction(socialtrust.NodeID(buyer), 1, 1)
				}
				ledger.Add(socialtrust.Rating{Rater: buyer, Ratee: (buyer + 3) % n, Value: 1}) //nolint:errcheck
				g.RecordInteraction(socialtrust.NodeID(buyer), socialtrust.NodeID((buyer+3)%n), 1)
			}
			// Seller 0 floods competitor 1 with negatives — behavior B4:
			// high interest similarity plus high-frequency low ratings.
			for k := 0; k < 40; k++ {
				ledger.Add(socialtrust.Rating{Rater: 0, Ratee: 1, Value: -1}) //nolint:errcheck
				g.RecordInteraction(0, 1, 1)
			}
			engine.Update(ledger.EndInterval())
		}
		name := "eBay"
		if protect {
			name = "eBay + SocialTrust"
		}
		reps := engine.Reputations()
		fmt.Printf("=== %s ===\n", name)
		fmt.Printf("  victim seller 1 reputation: %.4f (attacker seller 0: %.4f)\n", reps[1], reps[0])
		if f, ok := engine.(*socialtrust.Filter); ok {
			for _, adj := range f.LastReport().Adjusted {
				fmt.Printf("  filter: pair %d→%d matched %v, ratings reweighted by %.3f (Ωs=%.2f)\n",
					adj.Pair.Rater, adj.Pair.Ratee, adj.Behaviors, adj.Weight, adj.Similar)
			}
		}
	}
	fmt.Println()
	fmt.Println("Without the filter the competitor's negative flood buries the victim;")
	fmt.Println("with it, the high-similarity high-frequency negative pattern (B4) is")
	fmt.Println("detected and the campaign is shrunk to noise.")
}
