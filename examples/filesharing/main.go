// Filesharing: a Maze-like P2P file-sharing network under the strongest
// attack in the paper — multiple-and-mutual collusion (MMM) with
// compromised pretrusted peers — comparing EigenTrust alone against
// EigenTrust hardened with SocialTrust.
//
// This is the workload the paper's introduction motivates: an open
// file-sharing community where a clique of low-quality uploaders mutually
// inflates its reputation (and has even compromised some of the network's
// pretrusted seed peers) to attract downloads it then serves with fakes.
//
//	go run ./examples/filesharing
package main

import (
	"fmt"
	"sort"

	"socialtrust"
)

func main() {
	fmt.Println("Maze-like file-sharing network: 200 peers, 9 pretrusted (7 compromised),")
	fmt.Println("30 colluders in multiple-and-mutual collusion (MMM), colluder QoS B=0.2.")
	fmt.Println()

	for _, protect := range []bool{false, true} {
		cfg := socialtrust.DefaultSimConfig(socialtrust.MMM, socialtrust.EngineEigenTrust, 0.2, protect)
		cfg.CompromisedPretrusted = 7
		cfg.QueryCycles = 20
		cfg.SimulationCycles = 25
		res, err := socialtrust.RunSim(cfg)
		if err != nil {
			panic(err)
		}
		name := "EigenTrust"
		if protect {
			name = "EigenTrust + SocialTrust"
		}
		fmt.Printf("=== %s ===\n", name)
		fmt.Printf("  downloads served by colluders: %.1f%%\n", res.ColluderRequestShare()*100)
		fmt.Printf("  fake files served:             %.1f%%\n",
			100*float64(res.InauthenticServed)/float64(res.TotalRequests))

		// Top-10 reputation board.
		type peer struct {
			id  int
			rep float64
		}
		board := make([]peer, len(res.FinalReputations))
		for i, r := range res.FinalReputations {
			board[i] = peer{i, r}
		}
		sort.Slice(board, func(a, b int) bool { return board[a].rep > board[b].rep })
		fmt.Println("  top 10 reputations:")
		for _, p := range board[:10] {
			fmt.Printf("    peer %3d (%s) %.4f\n", p.id, label(cfg, p.id), p.rep)
		}
		fmt.Println()
	}
	fmt.Println("Without the filter, the colluding clique rides the compromised pretrusted")
	fmt.Println("peers to the top of the board and soaks up downloads it serves with fakes.")
	fmt.Println("With SocialTrust, the clique's mutual ratings are identified by their")
	fmt.Println("frequency, social closeness and interest mismatch, and shrunk to noise.")
}

func label(cfg socialtrust.SimConfig, id int) string {
	switch cfg.Type(id) {
	case socialtrust.Pretrusted:
		return "pretrusted"
	case socialtrust.Colluder:
		return "COLLUDER  "
	default:
		return "normal    "
	}
}
