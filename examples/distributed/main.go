// Distributed: SocialTrust deployed behind the paper's resource-manager
// overlay (Section 4.3). Ratings flow concurrently from many client
// goroutines to sharded manager mailboxes; at the end of each update
// interval the managers' shards are merged, the SocialTrust-wrapped engine
// computes the global reputations, and the fresh vector is broadcast back so
// every manager answers queries locally.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"sync"

	"socialtrust"
)

const (
	n        = 40
	managers = 4
)

func main() {
	g := socialtrust.NewGraph(n)
	tracker := socialtrust.NewTracker(n)
	sets := make([]socialtrust.InterestSet, n)
	// Honest peers 0..37 in a friendship ring with shared interests.
	for i := 0; i < 38; i++ {
		g.AddRelationship(socialtrust.NodeID(i), socialtrust.NodeID((i+1)%38),
			socialtrust.Relationship{Kind: socialtrust.Friendship})
		sets[i] = socialtrust.NewInterestSet(1, socialtrust.Category(2+i%4))
	}
	// Colluding pair 38, 39.
	for k := 0; k < 4; k++ {
		g.AddRelationship(38, 39, socialtrust.Relationship{Kind: socialtrust.Kinship})
	}
	g.AddRelationship(38, 0, socialtrust.Relationship{Kind: socialtrust.Friendship})
	g.AddRelationship(39, 19, socialtrust.Relationship{Kind: socialtrust.Friendship})
	sets[38] = socialtrust.NewInterestSet(30)
	sets[39] = socialtrust.NewInterestSet(31)

	engine := socialtrust.NewFilter(socialtrust.FilterConfig{NumNodes: n},
		g, sets, tracker, socialtrust.NewEBayEngine(n))
	overlay, err := socialtrust.NewManagerOverlay(n, managers, engine)
	if err != nil {
		panic(err)
	}
	defer overlay.Close()

	fmt.Printf("overlay: %d peers sharded across %d manager goroutines\n", n, managers)
	for interval := 0; interval < 4; interval++ {
		var wg sync.WaitGroup
		// Honest clients rate concurrently from their own goroutines.
		for i := 0; i < 38; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for _, j := range []int{(i + 1) % 38, (i + 37) % 38} {
					submit(overlay, g, i, j)
					submit(overlay, g, i, j)
				}
			}(i)
		}
		// The colluders spam from theirs.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 60; k++ {
				submit(overlay, g, 38, 39)
				submit(overlay, g, 39, 38)
			}
		}()
		wg.Wait()
		reps := overlay.EndInterval()
		fmt.Printf("interval %d: colluder reputations %.4f / %.4f, honest mean %.4f\n",
			interval+1, reps[38], reps[39], honestMean(reps))
	}

	fmt.Println()
	fmt.Printf("query through any manager: peer 38 -> %.4f, peer 5 -> %.4f\n",
		overlay.Reputation(38), overlay.Reputation(5))
	fmt.Println("the colluding pair's 60-ratings-per-interval spam was flagged by the")
	fmt.Println("SocialTrust filter inside the overlay's periodic global update.")
}

func submit(o *socialtrust.ManagerOverlay, g *socialtrust.Graph, i, j int) {
	if err := o.Submit(socialtrust.Rating{Rater: i, Ratee: j, Value: 1}); err != nil {
		panic(err)
	}
	g.RecordInteraction(socialtrust.NodeID(i), socialtrust.NodeID(j), 1)
}

func honestMean(reps []float64) float64 {
	sum := 0.0
	for i := 0; i < 38; i++ {
		sum += reps[i]
	}
	return sum / 38
}
