// Quickstart: wrap a reputation engine with the SocialTrust collusion
// filter and watch a colluding pair get caught.
//
// The scenario: ten honest peers trade services and rate each other
// normally; peers 10 and 11 are colluders — socially joined at the hip
// (four kinship ties, all of their interactions mutual), sharing no
// interests, spamming each other with positive ratings. Without SocialTrust
// the spam dominates the reputation board; with it, the pair's ratings are
// shrunk to noise.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"socialtrust"
)

const n = 12

func main() {
	fmt.Println("without SocialTrust:")
	show(run(false))
	fmt.Println("\nwith SocialTrust:")
	reps := run(true)
	show(reps)

	fmt.Println("\nThe colluders (peers 10, 11) hold top reputation without the filter")
	fmt.Println("and drop to the bottom with it — their mutual rating spam matched")
	fmt.Println("suspicious behaviors B2/B3 and was shrunk by the Gaussian filter.")
}

// run simulates five rating intervals and returns final reputations.
func run(protect bool) []float64 {
	g := socialtrust.NewGraph(n)
	tracker := socialtrust.NewTracker(n)
	ledger := socialtrust.NewLedger(n)

	// Honest peers 0..9 form a friendship ring and share interests.
	sets := make([]socialtrust.InterestSet, n)
	for i := 0; i < 10; i++ {
		g.AddRelationship(socialtrust.NodeID(i), socialtrust.NodeID((i+1)%10),
			socialtrust.Relationship{Kind: socialtrust.Friendship})
		sets[i] = socialtrust.NewInterestSet(1, socialtrust.Category(2+i%3))
	}
	// The colluders: very close socially, no shared interests, and a weak
	// link into the honest community so they are reachable.
	for k := 0; k < 4; k++ {
		g.AddRelationship(10, 11, socialtrust.Relationship{Kind: socialtrust.Kinship})
	}
	g.AddRelationship(10, 0, socialtrust.Relationship{Kind: socialtrust.Friendship})
	g.AddRelationship(11, 5, socialtrust.Relationship{Kind: socialtrust.Friendship})
	sets[10] = socialtrust.NewInterestSet(17)
	sets[11] = socialtrust.NewInterestSet(18)

	var engine socialtrust.Engine = socialtrust.NewEBayEngine(n)
	if protect {
		engine = socialtrust.NewFilter(socialtrust.FilterConfig{NumNodes: n},
			g, sets, tracker, engine)
	}

	rate := func(i, j int, v float64) {
		if err := ledger.Add(socialtrust.Rating{Rater: i, Ratee: j, Value: v}); err != nil {
			panic(err)
		}
		g.RecordInteraction(socialtrust.NodeID(i), socialtrust.NodeID(j), 1)
	}

	for interval := 0; interval < 5; interval++ {
		// Honest traffic: each ring peer uses and rates both neighbors.
		for i := 0; i < 10; i++ {
			for _, j := range []int{(i + 1) % 10, (i + 9) % 10} {
				rate(i, j, 1)
				rate(i, j, 1)
			}
		}
		// Collusion: 50 mutual positive ratings per interval.
		for k := 0; k < 50; k++ {
			rate(10, 11, 1)
			rate(11, 10, 1)
		}
		engine.Update(ledger.EndInterval())
	}
	return engine.Reputations()
}

func show(reps []float64) {
	for i, r := range reps {
		tag := "honest  "
		if i >= 10 {
			tag = "COLLUDER"
		}
		bar := ""
		for k := 0.0; k < r*300; k++ {
			bar += "#"
		}
		fmt.Printf("  peer %2d %s %.4f %s\n", i, tag, r, bar)
	}
}
