package socialtrust

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"socialtrust/internal/core"
	"socialtrust/internal/interest"
	"socialtrust/internal/manager"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation/eigentrust"
	"socialtrust/internal/socialgraph"
	"socialtrust/internal/xrand"
)

// End-to-end pipeline benchmarks at large N: one op is one full reputation-
// update interval — batched overlay ingest of a whole trace interval,
// interval drain, SocialTrust adjust, and the EigenTrust power iteration.
// scripts/bench.sh scale collects them into BENCH_scale.json; the 2k size
// doubles as the CI scale smoke (1 iteration, -race).
const (
	pipelineShards    = 16 // manager goroutines fronting the engine
	pipelineDegree    = 6  // random social edges grown per node
	pipelineRPN       = 4  // ratings per node per interval
	pipelineCats      = 16 // interest category universe
	pipelinePretrust  = 20
	pipelineBatchSize = 8192 // ratings per SubmitBatch call
)

// pipelineBench is one constructed large-N deployment plus its pre-drawn
// interval trace.
type pipelineBench struct {
	overlay *manager.Overlay
	trace   []rating.Rating
}

// buildPipeline wires the full stack the way a deployment would: a social
// graph with pipelineDegree random edges per node, interest profiles over a
// small category universe, a SocialTrust-wrapped EigenTrust engine, and a
// manager overlay sharded pipelineShards ways. Closeness paths are capped at
// 3 hops — the paper's observed transaction radius — which keeps the Ωc BFS
// bounded at 50k nodes. A non-empty stateDir makes the overlay durable:
// every shard journals its ingest to a WAL there before acknowledging.
func buildPipeline(tb testing.TB, n int, stateDir string) *pipelineBench {
	return buildPipelineSparse(tb, n, n, stateDir)
}

// buildPipelineSparse is buildPipeline with the interval's rating activity
// confined to the first activeRaters nodes (ratees still span the whole
// population) — the sparse-activity regime where the incremental engine's
// per-interval cost should track the active set, not n.
func buildPipelineSparse(tb testing.TB, n, activeRaters int, stateDir string) *pipelineBench {
	tb.Helper()
	rng := xrand.New(uint64(n))
	g := socialgraph.New(n)
	for i := 0; i < n; i++ {
		for d := 0; d < pipelineDegree; d++ {
			j := rng.Intn(n)
			if j != i {
				g.AddRelationship(socialgraph.NodeID(i), socialgraph.NodeID(j),
					socialgraph.Relationship{Kind: socialgraph.Friendship})
			}
		}
	}
	sets := make([]interest.Set, n)
	for i := range sets {
		cats := make([]interest.Category, 0, 4)
		for len(cats) < 4 {
			c := interest.Category(rng.Intn(pipelineCats))
			dup := false
			for _, have := range cats {
				if have == c {
					dup = true
					break
				}
			}
			if !dup {
				cats = append(cats, c)
			}
		}
		sets[i] = interest.NewSet(cats...)
	}
	tracker := interest.NewTracker(n)
	pretrusted := make([]int, pipelinePretrust)
	for i := range pretrusted {
		pretrusted[i] = i
	}
	inner := eigentrust.New(eigentrust.Config{NumNodes: n, Pretrusted: pretrusted})
	fc := core.Config{NumNodes: n}
	fc.Closeness.MaxPathHops = 3
	filter := core.New(fc, g, sets, tracker, inner)
	o, err := manager.NewWithOptions(n, pipelineShards, filter, manager.Options{StateDir: stateDir})
	if err != nil {
		tb.Fatal(err)
	}
	trace := make([]rating.Rating, 0, activeRaters*pipelineRPN)
	for i := 0; i < activeRaters*pipelineRPN; i++ {
		rater := rng.Intn(activeRaters)
		ratee := rng.Intn(n)
		if ratee == rater {
			ratee = (ratee + 1) % n
		}
		v := 1.0
		if rng.Float64() < 0.2 {
			v = -1
		}
		trace = append(trace, rating.Rating{
			Rater: rater, Ratee: ratee, Value: v,
			Cycle: i / n, Category: rng.Intn(pipelineCats),
			Seq: uint64(i + 1), // WAL replay dedupe key (durable overlays)
		})
	}
	return &pipelineBench{overlay: o, trace: trace}
}

// runInterval executes one full update interval: batched ingest of the whole
// trace followed by the drain/adjust/iterate pass.
func (p *pipelineBench) runInterval(tb testing.TB) {
	tb.Helper()
	for lo := 0; lo < len(p.trace); lo += pipelineBatchSize {
		hi := lo + pipelineBatchSize
		if hi > len(p.trace) {
			hi = len(p.trace)
		}
		if errs := p.overlay.SubmitBatch(p.trace[lo:hi]); errs != nil {
			for _, err := range errs {
				if err != nil {
					tb.Fatal(err)
				}
			}
		}
	}
	p.overlay.EndInterval()
}

func benchmarkPipeline(b *testing.B, n int) {
	benchmarkPipelineDir(b, n, "")
}

// benchmarkPipelineDir is benchmarkPipeline over an optionally durable
// overlay: with a state directory, every SubmitBatch is journaled to the
// per-shard WALs before acknowledging — the ingest-overhead cost of
// durability, priced by comparing Pipeline2kWAL against Pipeline2k
// (scripts/bench.sh persist; acceptance: <= 15%).
func benchmarkPipelineDir(b *testing.B, n int, stateDir string) {
	p := buildPipeline(b, n, stateDir)
	defer p.overlay.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.runInterval(b)
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(len(p.trace))*float64(b.N)/secs, "ratings/s")
	}
	b.ReportMetric(secs/float64(b.N), "s/interval")
	if mb := peakRSSMB(); mb > 0 {
		b.ReportMetric(mb, "MB-peakRSS")
	}
}

func BenchmarkPipeline2k(b *testing.B)    { benchmarkPipeline(b, 2_000) }
func BenchmarkPipeline2kWAL(b *testing.B) { benchmarkPipelineDir(b, 2_000, b.TempDir()) }
func BenchmarkPipeline10k(b *testing.B)   { benchmarkPipeline(b, 10_000) }
func BenchmarkPipeline50k(b *testing.B)   { benchmarkPipeline(b, 50_000) }
func BenchmarkPipeline100k(b *testing.B)  { benchmarkPipeline(b, 100_000) }

// benchmarkPipelineSparse measures the incremental engine's sparse-activity
// regime: only activeFrac of the population rates each interval. Two
// untimed warm-up intervals populate the signal caches and the EigenTrust
// CSR; the timed intervals then exercise the steady state where per-interval
// cost should track the active set (dirty pairs, dirty rows), not n.
func benchmarkPipelineSparse(b *testing.B, n int, activeFrac float64) {
	active := int(float64(n) * activeFrac)
	if active < 1 {
		active = 1
	}
	p := buildPipelineSparse(b, n, active, "")
	defer p.overlay.Close()
	p.runInterval(b) // cold: BFS + CSR build for the active set
	p.runInterval(b) // warm verification pass
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.runInterval(b)
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(len(p.trace))*float64(b.N)/secs, "ratings/s")
	}
	b.ReportMetric(secs/float64(b.N), "s/interval")
	if mb := peakRSSMB(); mb > 0 {
		b.ReportMetric(mb, "MB-peakRSS")
	}
}

// BenchmarkPipelineSparse50k is the headline sparse-activity benchmark: 1%
// of a 50k-node population active per interval. Compare its s/interval
// against BenchmarkPipeline50k to see the incremental engine's cost
// tracking activity instead of population (bench.sh scale records the ratio
// as sparse_speedup).
func BenchmarkPipelineSparse50k(b *testing.B) { benchmarkPipelineSparse(b, 50_000, 0.01) }

// peakRSSMB reads the process's peak resident set (VmHWM) in MB; 0 when the
// platform does not expose /proc/self/status.
func peakRSSMB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}
