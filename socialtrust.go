// Package socialtrust is a reproduction of "Leveraging Social Networks to
// Combat Collusion in Reputation Systems for Peer-to-Peer Networks"
// (Li, Shen, Sapra — IPDPS 2011 / IEEE TC 2012).
//
// SocialTrust is a collusion-deterrence layer for P2P reputation systems: it
// re-weights reputation ratings using the social closeness Ωc and interest
// similarity Ωs between rater and ratee, shrinking ratings that match the
// suspicious behavior patterns B1–B4 mined from the Overstock trace with a
// Gaussian filter (Equations 2–11 of the paper).
//
// The package is a facade over the implementation packages:
//
//   - the social-network substrate (friendship multigraph, typed
//     relationships, interaction frequency, Ωc — Equations 2/3/4/10)
//   - the interest model (interest sets, Ωs — Equations 1/7/11)
//   - the rating ledger (per-interval t+/t− frequency counters)
//   - three baseline reputation engines: EigenTrust (power iteration with
//     pretrusted peers, plus the paper-evaluation iterative variant), an
//     eBay-style per-interval-deduplicated accumulator, and a
//     TrustGuard-style credibility-weighted engine
//   - the SocialTrust filter itself, wrapping any Engine
//   - the Section 5 P2P simulator with the PCM/MCM/MMM collusion models
//   - the synthetic Overstock trace generator and Section 3 analyzers
//   - the experiment harness that regenerates every table and figure
//
// Quick start — wrap an engine with the filter:
//
//	g := socialtrust.NewGraph(n)
//	tracker := socialtrust.NewTracker(n)
//	inner := socialtrust.NewEBayEngine(n)
//	filter := socialtrust.NewFilter(socialtrust.FilterConfig{NumNodes: n},
//	    g, interestSets, tracker, inner)
//	// feed rating snapshots each update interval:
//	filter.Update(ledger.EndInterval())
//	reps := filter.Reputations()
//
// See examples/ for runnable programs and DESIGN.md / EXPERIMENTS.md for the
// reproduction methodology.
package socialtrust

import (
	"net/http"

	"socialtrust/internal/audit"
	"socialtrust/internal/core"
	"socialtrust/internal/experiments"
	"socialtrust/internal/fault"
	"socialtrust/internal/interest"
	"socialtrust/internal/manager"
	"socialtrust/internal/obs"
	"socialtrust/internal/obs/event"
	"socialtrust/internal/obs/health"
	"socialtrust/internal/obs/span"
	"socialtrust/internal/rating"
	"socialtrust/internal/reputation"
	"socialtrust/internal/reputation/ebay"
	"socialtrust/internal/reputation/eigentrust"
	"socialtrust/internal/reputation/trustguard"
	"socialtrust/internal/sim"
	"socialtrust/internal/socialgraph"
	"socialtrust/internal/sybil"
	"socialtrust/internal/trace"
)

// Social-network substrate (internal/socialgraph).
type (
	// Graph is the undirected social multigraph with typed relationships
	// and a directed interaction-frequency table.
	Graph = socialgraph.Graph
	// NodeID identifies a peer in the social graph.
	NodeID = socialgraph.NodeID
	// Relationship is a typed social tie between two peers.
	Relationship = socialgraph.Relationship
	// RelationshipKind is the type of a social relationship.
	RelationshipKind = socialgraph.RelationshipKind
	// ClosenessParams configures the Ωc computation.
	ClosenessParams = socialgraph.ClosenessParams
)

// Relationship kinds, ordered by social strength.
const (
	Friendship = socialgraph.Friendship
	Classmate  = socialgraph.Classmate
	Colleague  = socialgraph.Colleague
	Kinship    = socialgraph.Kinship
)

// NewGraph creates a social graph with n isolated nodes.
func NewGraph(n int) *Graph { return socialgraph.New(n) }

// Interest model (internal/interest).
type (
	// InterestSet is a node's interest profile V.
	InterestSet = interest.Set
	// Category identifies an interest category.
	Category = interest.Category
	// Tracker records per-node requests by category for the
	// falsification-resistant weighted similarity (Equation 11).
	Tracker = interest.Tracker
)

// NewInterestSet builds an interest set from categories.
func NewInterestSet(cats ...Category) InterestSet { return interest.NewSet(cats...) }

// NewTracker creates a request tracker for n nodes.
func NewTracker(n int) *Tracker { return interest.NewTracker(n) }

// Similarity computes Ωs(i,j) = |Vi∩Vj| / min(|Vi|,|Vj|) (Equation 1/7).
func Similarity(a, b InterestSet) float64 { return interest.Similarity(a, b) }

// Rating substrate (internal/rating).
type (
	// Rating is one service rating.
	Rating = rating.Rating
	// Ledger collects ratings for the current update interval.
	Ledger = rating.Ledger
	// Snapshot is a drained update interval.
	Snapshot = rating.Snapshot
)

// NewLedger creates a rating ledger for numNodes peers.
func NewLedger(numNodes int) *Ledger { return rating.NewLedger(numNodes) }

// Reputation engines.
type (
	// Engine is the pluggable reputation-system abstraction.
	Engine = reputation.Engine
	// EigenTrustConfig parameterizes the canonical EigenTrust engine.
	EigenTrustConfig = eigentrust.Config
	// EigenTrustEngine is the canonical power-iteration engine. Beyond the
	// Engine interface it exposes Stats, the per-update convergence
	// diagnostics.
	EigenTrustEngine = eigentrust.Engine
	// EigenTrustStats reports the last power iteration's iteration count,
	// final L1 residual, and whether it converged before the MaxIter cap.
	EigenTrustStats = eigentrust.Stats
)

// NewEigenTrustEngine builds a canonical (power-iteration) EigenTrust
// engine.
func NewEigenTrustEngine(cfg EigenTrustConfig) *EigenTrustEngine { return eigentrust.New(cfg) }

// NewEBayEngine builds an eBay-style engine for numNodes peers.
func NewEBayEngine(numNodes int) Engine { return ebay.New(numNodes) }

// TrustGuardConfig parameterizes the TrustGuard-style engine.
type TrustGuardConfig = trustguard.Config

// NewTrustGuardEngine builds a TrustGuard-style engine (credibility-weighted
// feedback + fluctuation-penalized temporal blend).
func NewTrustGuardEngine(cfg TrustGuardConfig) Engine { return trustguard.New(cfg) }

// SocialTrust core (internal/core).
type (
	// Filter is the SocialTrust collusion filter; it implements Engine.
	Filter = core.SocialTrust
	// FilterConfig parameterizes the filter.
	FilterConfig = core.Config
	// Behavior identifies the suspicious pattern a pair matched (B1–B4).
	Behavior = core.Behavior
	// PairAdjustment records how one rater→ratee pair was re-weighted.
	PairAdjustment = core.PairAdjustment
	// FilterReport summarizes one interval's filtering pass.
	FilterReport = core.Report
)

// Suspicious collusion behavior patterns (Section 3 of the paper).
const (
	B1 = core.B1 // distant pair, frequent high ratings
	B2 = core.B2 // close pair, low-reputed ratee, frequent high ratings
	B3 = core.B3 // few common interests, frequent high ratings
	B4 = core.B4 // many common interests, frequent low ratings
)

// NewFilter wraps inner with the SocialTrust collusion filter. sets must
// hold one interest profile per node; tracker may be nil unless
// cfg.WeightedSimilarity is set.
func NewFilter(cfg FilterConfig, g *Graph, sets []InterestSet, tracker *Tracker, inner Engine) *Filter {
	return core.New(cfg, g, sets, tracker, inner)
}

// Simulation testbed (internal/sim).
type (
	// SimConfig holds every Section 5.1 experiment parameter.
	SimConfig = sim.Config
	// SimResult is the outcome of one simulation run.
	SimResult = sim.Result
	// CollusionModel selects PCM, MCM, MMM or no collusion.
	CollusionModel = sim.CollusionModel
	// EngineKind selects the underlying reputation system.
	EngineKind = sim.EngineKind
	// Network is a fully constructed simulation instance.
	Network = sim.Network
	// NodeType classifies simulated peers.
	NodeType = sim.NodeType
	// ChurnConfig parameterizes population churn: per-cycle departure and
	// rejoin probabilities and the fraction of rejoins that whitewash
	// (return under a fresh identity).
	ChurnConfig = sim.ChurnConfig
)

// Node types of the paper's node model.
const (
	Pretrusted = sim.Pretrusted
	Normal     = sim.Normal
	Colluder   = sim.Colluder
)

// Collusion models and engine kinds.
const (
	NoCollusion = sim.NoCollusion
	PCM         = sim.PCM
	MCM         = sim.MCM
	MMM         = sim.MMM

	EngineEigenTrust = sim.EngineEigenTrust
	EngineEBay       = sim.EngineEBay
	EngineTrustGuard = sim.EngineTrustGuard
)

// DefaultSimConfig returns the paper's Section 5.1 setup.
func DefaultSimConfig(model CollusionModel, engine EngineKind, b float64, socialTrust bool) SimConfig {
	return sim.DefaultConfig(model, engine, b, socialTrust)
}

// DefaultChurn returns a moderate churn regime: 5% of online non-pretrusted
// peers depart per cycle, half the offline population rejoins per cycle, and
// 10% of rejoins whitewash.
func DefaultChurn() ChurnConfig { return sim.DefaultChurn() }

// RunSim executes one simulation.
func RunSim(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// NewNetwork constructs a simulation instance without running it.
func NewNetwork(cfg SimConfig) (*Network, error) { return sim.NewNetwork(cfg) }

// Resource-manager overlay (internal/manager).
type (
	// ManagerOverlay is the distributed rating-collection overlay of the
	// paper's Section 4.3: sharded manager goroutines collect ratings and
	// serve reputation queries, with a periodic global update.
	ManagerOverlay = manager.Overlay
	// ManagerOptions tunes the overlay's fault tolerance: per-operation
	// timeouts, retry attempts/backoff, the drain deadline, and an optional
	// fault-injection plan. The zero value reproduces the seed overlay.
	ManagerOptions = manager.Options
	// ManagerDrainStatus reports how one update interval's drain degraded:
	// which shards were recovered from replicas and which were lost.
	ManagerDrainStatus = manager.DrainStatus
)

// Typed overlay failures. Submit and Reputation return ErrShardDown when the
// responsible shard (and, in fault-tolerant mode, its replica holder) is
// crashed, ErrTimeout when an armed deadline expires or the fault plan drops
// every delivery attempt, and ErrClosed after Close.
var (
	ErrManagerClosed = manager.ErrClosed
	ErrShardDown     = manager.ErrShardDown
	ErrTimeout       = manager.ErrTimeout
)

// NewManagerOverlay starts an overlay of numManagers manager goroutines
// fronting the given engine (bare or SocialTrust-wrapped).
func NewManagerOverlay(numNodes, numManagers int, engine Engine) (*ManagerOverlay, error) {
	return manager.New(numNodes, numManagers, engine)
}

// NewManagerOverlayWithOptions starts an overlay with explicit fault-tolerance
// options: replica mirroring to the successor shard, bounded-backoff retries,
// timeouts, and (optionally) a deterministic fault-injection plan.
func NewManagerOverlayWithOptions(numNodes, numManagers int, engine Engine, opts ManagerOptions) (*ManagerOverlay, error) {
	return manager.NewWithOptions(numNodes, numManagers, engine, opts)
}

// Fault injection (internal/fault).
type (
	// FaultConfig declares a deterministic fault regime: message drop /
	// delay / duplication rates at the manager mailbox boundary, plus
	// random or scheduled shard crashes, all derived from one seed.
	FaultConfig = fault.Config
	// FaultPlan is an armed fault regime; the overlay consults it on every
	// delivery and at every update-interval boundary, and it logs each
	// injected event in a deterministic, replayable sequence.
	FaultPlan = fault.Plan
	// FaultEvent is one injected fault in the plan's append-only log.
	FaultEvent = fault.Event
	// FaultCrash schedules one deterministic shard outage.
	FaultCrash = fault.Crash
)

// NewFaultPlan arms a fault regime over the given shard count. Pass the plan
// to ManagerOptions.Fault (and derive churn/faults in simulations through
// SimConfig.Faults instead).
func NewFaultPlan(cfg FaultConfig, shards int) (*FaultPlan, error) {
	return fault.NewPlan(cfg, shards)
}

// Sybil defense (internal/sybil).
type (
	// SybilDetector is a SybilGuard-style random-route detector over the
	// social graph, used to prune fabricated identity clusters before
	// SocialTrust computes its social signals.
	SybilDetector = sybil.Detector
	// SybilConfig parameterizes the detector.
	SybilConfig = sybil.Config
)

// NewSybilDetector creates a detector over a frozen social graph.
func NewSybilDetector(g *Graph, cfg SybilConfig) *SybilDetector { return sybil.New(g, cfg) }

// Overstock trace substrate (internal/trace).
type (
	// TraceConfig parameterizes the synthetic Overstock trace generator.
	TraceConfig = trace.Config
	// TraceDataset is a generated trace with its Section 3 analyzers.
	TraceDataset = trace.Dataset
)

// DefaultTraceConfig returns the scaled-down default trace configuration.
func DefaultTraceConfig() TraceConfig { return trace.Default() }

// GenerateTrace builds a synthetic Overstock-like trace.
func GenerateTrace(cfg TraceConfig) (*TraceDataset, error) { return trace.Generate(cfg) }

// Experiment harness (internal/experiments).
type (
	// Experiment is one registered table/figure reproduction.
	Experiment = experiments.Spec
	// ExperimentOptions tunes experiment execution.
	ExperimentOptions = experiments.Options
)

// Experiments returns every registered experiment sorted by id.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment executes a registered experiment by id.
func RunExperiment(id string, o ExperimentOptions, w interface{ Write([]byte) (int, error) }) error {
	return experiments.Run(id, o, w)
}

// Observability (internal/obs).
//
// Every subsystem records named counters, gauges, and latency histograms
// into a process-wide registry. Recording is off by default and costs ~1 ns
// per call site while disabled; EnableMetrics (or ServeMetrics) turns it on.
type (
	// MetricsSnapshot is a point-in-time copy of every registered metric,
	// with cumulative histogram buckets.
	MetricsSnapshot = obs.Snapshot
)

// EnableMetrics turns on metric recording process-wide.
func EnableMetrics() { obs.Enable() }

// MetricsEnabled reports whether metric recording is on.
func MetricsEnabled() bool { return obs.Enabled() }

// ReadMetricsSnapshot captures the current value of every registered metric.
func ReadMetricsSnapshot() MetricsSnapshot { return obs.ReadSnapshot() }

// WriteMetricsText writes all metrics in Prometheus text exposition format.
func WriteMetricsText(w interface{ Write([]byte) (int, error) }) error { return obs.WriteText(w) }

// WriteMetricsJSON writes all metrics as an indented JSON document.
func WriteMetricsJSON(w interface{ Write([]byte) (int, error) }) error { return obs.WriteJSON(w) }

// MetricsHandler returns an http.Handler serving /metrics (Prometheus text)
// and /metrics.json; with pprofToo it also mounts the net/http/pprof
// profiling endpoints under /debug/pprof/.
func MetricsHandler(pprofToo bool) http.Handler { return obs.Handler(pprofToo) }

// ServeMetrics starts a background HTTP server for MetricsHandler on addr
// and enables metric recording. Close the returned server when done.
func ServeMetrics(addr string, pprofToo bool) (*http.Server, error) { return obs.Serve(addr, pprofToo) }

// Decision-audit layer (internal/obs/event + internal/audit).
//
// Beyond the aggregate metrics above, the flight recorder captures
// structured per-decision events: one FilterDecisionEvent per shrunk rating
// pair (with the full B1–B4 evidence chain), per-cycle simulator series, and
// manager-overlay operations. Like metrics, recording is off by default and
// costs ~1 ns per call site while disabled. SimConfig.AuditDir automates the
// whole loop for simulation runs; cmd/socialtrust-audit analyzes the output.
type (
	// AuditEvent is one flight-recorder entry (exactly one payload set).
	AuditEvent = event.Event
	// FilterDecisionEvent records why one rating pair was shrunk.
	FilterDecisionEvent = event.FilterDecision
	// CycleSeriesEvent is one simulation cycle's time-series record.
	CycleSeriesEvent = event.CycleSeries
	// ManagerOverlayEvent records one manager-overlay drain or gossip run.
	ManagerOverlayEvent = event.ManagerEvent
	// FlightRecorder is the bounded ring buffer behind the audit layer.
	FlightRecorder = event.Recorder
	// AuditGroundTruth is the serialized collusion truth of one simulation.
	AuditGroundTruth = audit.GroundTruth
	// AuditTruthEdge is one directed collusion rating edge.
	AuditTruthEdge = audit.TruthEdge
	// DetectionReport scores filter decisions against ground truth.
	DetectionReport = audit.Report
	// DetectionScore is one behavior's precision/recall/F1 row.
	DetectionScore = audit.BehaviorScore
)

// EnableFlightRecorder installs a fresh process-wide flight recorder holding
// at most capacity events (the package default for capacity <= 0) and
// returns it.
func EnableFlightRecorder(capacity int) *FlightRecorder { return event.Enable(capacity) }

// DisableFlightRecorder uninstalls the process-wide flight recorder.
func DisableFlightRecorder() { event.Disable() }

// FlightRecorderEnabled reports whether a flight recorder is installed.
func FlightRecorderEnabled() bool { return event.Enabled() }

// DrainAuditEvents drains the process-wide flight recorder (nil while
// disabled).
func DrainAuditEvents() []AuditEvent { return event.Drain() }

// WriteAuditDir writes one run's audit trail (ground truth + events) in the
// layout cmd/socialtrust-audit consumes.
func WriteAuditDir(dir string, gt AuditGroundTruth, events []AuditEvent) error {
	return audit.WriteDir(dir, gt, events)
}

// LoadAuditDir reads an audit directory written by WriteAuditDir (or a
// simulation run with SimConfig.AuditDir set).
func LoadAuditDir(dir string) (AuditGroundTruth, []AuditEvent, error) { return audit.LoadDir(dir) }

// ScoreDetection joins filter decisions against ground truth into
// per-behavior, per-cycle precision/recall/F1.
func ScoreDetection(gt AuditGroundTruth, events []AuditEvent) DetectionReport {
	return audit.Score(gt, events)
}

// LoadFaultEvents reads the injected-fault log an audited fault-injection run
// leaves next to its audit trail. It returns (nil, nil) when the run injected
// no faults (no log file).
func LoadFaultEvents(dir string) ([]FaultEvent, error) { return audit.LoadFaultEvents(dir) }

// Interval tracing layer (internal/obs/span + internal/audit).
//
// The third observability tier: hierarchical wall-time spans over the
// update-interval pipeline (overlay ingest → drain → SocialTrust adjust →
// engine iteration), rolled up into a per-interval phase attribution. Like
// the metrics and the flight recorder, tracing is off by default and costs a
// nil check per call site while disabled, and it never changes results —
// tracing on vs off is bit-identical in reputations, detection tables, and
// audit event streams. SimConfig.TraceDir automates the loop for simulation
// runs; cmd/socialtrust-trace analyzes the exported trace.
type (
	// TraceSpan is one finished span of a traced run.
	TraceSpan = span.Span
	// TraceSpanAttr is one typed key/value attribute on a span.
	TraceSpanAttr = span.Attr
	// TraceAttribution is one trace's per-phase wall-time rollup.
	TraceAttribution = span.Attribution
	// SpanRecorder is the bounded ring buffer behind the tracing layer.
	SpanRecorder = span.Recorder
	// TraceContext addresses a live span so children can be attached across
	// goroutine (overlay mailbox) boundaries.
	TraceContext = span.Context
	// PhaseSeconds is the per-interval phase attribution embedded in a
	// traced run's CycleSeriesEvent.
	PhaseSeconds = event.PhaseSeconds
)

// EnableTracing installs a fresh process-wide span recorder holding at most
// capacity spans (the package default for capacity <= 0) and returns it.
func EnableTracing(capacity int) *SpanRecorder { return span.Enable(capacity) }

// DisableTracing uninstalls the process-wide span recorder.
func DisableTracing() { span.Disable() }

// TracingEnabled reports whether a span recorder is installed.
func TracingEnabled() bool { return span.Enabled() }

// WriteTraceDir writes a traced run's span stream (JSONL plus the Chrome
// trace-event export) into dir, next to any audit streams already there.
func WriteTraceDir(dir string, spans []TraceSpan) error { return audit.WriteTrace(dir, spans) }

// LoadTraceDir reads the span stream of a trace (or audit) directory. It
// returns (nil, nil) when the run was not traced (no trace file).
func LoadTraceDir(dir string) ([]TraceSpan, error) { return audit.LoadTrace(dir) }

// ReadTraceSpans parses a JSONL span stream (one span per line) as written
// by WriteTraceDir.
func ReadTraceSpans(r interface{ Read([]byte) (int, error) }) ([]TraceSpan, error) {
	return span.ReadJSONL(r)
}

// AttributeTrace recomputes per-trace phase attributions offline from an
// exported span stream, ordered by trace ID (one trace per update interval
// for simulation runs).
func AttributeTrace(spans []TraceSpan) []TraceAttribution { return span.Attribute(spans) }

// Ops plane (internal/obs/health).
//
// The fourth observability tier: a background sampler that periodically
// snapshots the metric registry plus runtime stats into a bounded
// time-series window, rule-driven watchdogs judging per-component health
// (ok/degraded/failing) from the deltas, and /healthz + /readyz + /statusz
// probe handlers. Like every other tier it is off by default, only *reads*
// state, and never changes results — health on vs off is bit-identical in
// reputations, detection tables, and the deterministic audit streams.
// Watchdog transitions land in the flight recorder as HealthEvents (their
// own audit file) and in /statusz; cmd/socialtrust-top renders it all live.
type (
	// HealthConfig parameterizes the sampler (cadence, window, SLO budget,
	// watchdog thresholds); its zero value is usable.
	HealthConfig = health.Config
	// HealthSampler is the background sampler + watchdog evaluator.
	HealthSampler = health.Sampler
	// HealthStatus is the tri-state verdict (ok/degraded/failing).
	HealthStatus = health.Status
	// HealthSample is one tick's curated metric snapshot.
	HealthSample = health.Sample
	// HealthStatusPayload is the full /statusz document.
	HealthStatusPayload = health.StatusPayload
	// HealthComponentStatus is one component's aggregated verdict.
	HealthComponentStatus = health.ComponentStatus
	// HealthEvent records one watchdog status transition.
	HealthEvent = event.HealthEvent
	// RuntimeStats is one CaptureRuntimeStats sample of process state.
	RuntimeStats = obs.RuntimeStats
)

// Health verdict values, ordered by severity.
const (
	HealthOK       = health.StatusOK
	HealthDegraded = health.StatusDegraded
	HealthFailing  = health.StatusFailing
)

// StartHealthSampler launches the background health sampler and installs it
// process-wide. Stop the returned sampler when done.
func StartHealthSampler(cfg HealthConfig) *HealthSampler { return health.Start(cfg) }

// CurrentHealthSampler returns the installed sampler, or nil while off.
func CurrentHealthSampler() *HealthSampler { return health.Current() }

// HealthHandler mounts /healthz, /readyz and /statusz over base (typically
// MetricsHandler, so one mux serves probes, metrics and pprof together).
func HealthHandler(s *HealthSampler, base http.Handler) http.Handler {
	return health.Handler(s, base)
}

// ServeHealth starts the combined ops server (probes + metrics + optional
// pprof) on addr and enables metric recording. Close the returned server
// and Stop the sampler when done.
func ServeHealth(addr string, pprofToo bool, s *HealthSampler) (*http.Server, error) {
	return health.Serve(addr, pprofToo, s)
}

// CaptureRuntimeStats samples goroutine count, memory statistics and (on
// Linux) resident-set size, refreshing the runtime_* gauges, and returns the
// sample. A running health sampler drives this automatically on its tick.
func CaptureRuntimeStats() RuntimeStats { return obs.CaptureRuntime() }
